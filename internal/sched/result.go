package sched

import (
	"fmt"

	"github.com/mia-rt/mia/internal/model"
)

// Result is a computed time-triggered schedule: the paper's output
// (schedulable, Θ, R). All slices are indexed by model.TaskID.
type Result struct {
	// Algorithm names the producer ("incremental" or "fixpoint").
	Algorithm string

	// Release holds the definitive release dates Θ: task i must start
	// exactly at Release[i], never earlier, even if its inputs are ready.
	Release []model.Cycles

	// Interference holds each task's total interference delay I_i.
	Interference []model.Cycles

	// Response holds the worst-case response times R_i = WCET_i + I_i.
	Response []model.Cycles

	// PerBank holds each task's interference split by memory bank
	// (PerBank[i][b]); the row sums equal Interference[i].
	PerBank [][]model.Cycles

	// Makespan is the global worst-case response time of the task graph:
	// max_i (Release[i] + Response[i]).
	Makespan model.Cycles

	// Iterations counts algorithm steps: cursor events for the incremental
	// scheduler, outer fixed-point rounds for the baseline. It feeds the
	// complexity instrumentation in the benchmark harness.
	Iterations int

	// flat is the single backing array behind PerBank (task-major, banks
	// per row), retained so that results built by NewResult can be copied
	// and zeroed in one pass instead of row by row. It is nil for results
	// assembled by hand.
	flat []model.Cycles
}

// NewResult allocates a zeroed result for n tasks and b banks.
func NewResult(algorithm string, n, banks int) *Result {
	perBank := make([][]model.Cycles, n)
	flat := make([]model.Cycles, n*banks)
	backing := flat
	for i := range perBank {
		perBank[i], backing = backing[:banks], backing[banks:]
	}
	return &Result{
		Algorithm:    algorithm,
		Release:      make([]model.Cycles, n),
		Interference: make([]model.Cycles, n),
		Response:     make([]model.Cycles, n),
		PerBank:      perBank,
		flat:         flat,
	}
}

// FlatPerBank returns the task-major backing array behind PerBank
// (FlatPerBank()[i*banks+b] aliases PerBank[i][b]) when the result was built
// by NewResult, nil otherwise. Schedulers use it to snapshot and restore the
// whole per-bank matrix with a single copy; the rows of PerBank observe every
// mutation made through it.
func (r *Result) FlatPerBank() []model.Cycles { return r.flat }

// Reset zeroes every per-task quantity and the aggregate fields in place,
// keeping all buffers, so that a pooled Result can be reused across
// scheduling runs without reallocation.
//
//mia:hotpath
func (r *Result) Reset() {
	for i := range r.Release {
		r.Release[i] = 0
		r.Interference[i] = 0
		r.Response[i] = 0
	}
	if r.flat != nil {
		for i := range r.flat {
			r.flat[i] = 0
		}
	} else {
		for i := range r.PerBank {
			row := r.PerBank[i]
			for b := range row {
				row[b] = 0
			}
		}
	}
	r.Makespan = 0
	r.Iterations = 0
}

// Finish returns the completion date of task id: Release + Response.
func (r *Result) Finish(id model.TaskID) model.Cycles {
	return r.Release[id] + r.Response[id]
}

// Window returns task id's execution window [release, finish).
func (r *Result) Window(id model.TaskID) (from, to model.Cycles) {
	return r.Release[id], r.Finish(id)
}

// RecomputeMakespan refreshes Makespan from the per-task values.
//
//mia:hotpath
func (r *Result) RecomputeMakespan() {
	var m model.Cycles
	for i := range r.Release {
		if f := r.Finish(model.TaskID(i)); f > m {
			m = f
		}
	}
	r.Makespan = m
}

// TotalInterference sums interference over all tasks: a scalar pessimism
// metric used by the ablation experiments.
func (r *Result) TotalInterference() model.Cycles {
	var sum model.Cycles
	for _, v := range r.Interference {
		sum += v
	}
	return sum
}

// Overlaps reports whether the half-open execution windows of tasks a and b
// intersect. Windows are half-open ([rel, fin)), so a task finishing exactly
// when another is released does not overlap it — the close-before-open
// convention of the incremental algorithm's event loop.
func (r *Result) Overlaps(a, b model.TaskID) bool {
	return r.Release[a] < r.Finish(b) && r.Release[b] < r.Finish(a)
}

// Equal reports whether two results describe the same schedule: identical
// release dates and response times for every task. Algorithm names,
// iteration counts and per-bank splits are not compared.
func (r *Result) Equal(o *Result) bool {
	if len(r.Release) != len(o.Release) {
		return false
	}
	for i := range r.Release {
		if r.Release[i] != o.Release[i] || r.Response[i] != o.Response[i] {
			return false
		}
	}
	return true
}

// Diff describes the first divergence between two results, for test
// diagnostics. It returns "" when the results are Equal.
func (r *Result) Diff(o *Result) string {
	if len(r.Release) != len(o.Release) {
		return fmt.Sprintf("task counts differ: %d vs %d", len(r.Release), len(o.Release))
	}
	for i := range r.Release {
		if r.Release[i] != o.Release[i] {
			return fmt.Sprintf("%s: release %d (%s) vs %d (%s)",
				model.TaskID(i), r.Release[i], r.Algorithm, o.Release[i], o.Algorithm)
		}
		if r.Response[i] != o.Response[i] {
			return fmt.Sprintf("%s: response %d (%s) vs %d (%s)",
				model.TaskID(i), r.Response[i], r.Algorithm, o.Response[i], o.Algorithm)
		}
	}
	return ""
}

// String renders a one-line summary.
func (r *Result) String() string {
	return fmt.Sprintf("%s{tasks=%d makespan=%d iterations=%d}",
		r.Algorithm, len(r.Release), r.Makespan, r.Iterations)
}
