package fixpoint

import (
	"context"

	"github.com/mia-rt/mia/internal/engine"
	"github.com/mia-rt/mia/internal/sched"
)

// backend adapts this package to the engine registry. The fixed-point
// baseline has no warm-start state, so its Warm instances run every request
// cold over the current order overlay (engine.NewColdWarm).
type backend struct{}

func init() { engine.Register(engine.Fixpoint, backend{}) }

// Analyze runs one cold analysis of the image's baseline orders.
func (backend) Analyze(ctx context.Context, img *engine.Image) (*sched.Result, error) {
	return analyze(img, img.NewOrders(), img.CancelWith(ctx))
}

// NewWarm returns an always-cold analyzer over the image.
func (backend) NewWarm(img *engine.Image) engine.Warm {
	return engine.NewColdWarm(img, analyze)
}
