// Package fixpoint implements the original interference analysis that the
// paper improves upon: the double fixed-point iteration of Rihani et al.,
// "Response time analysis of synchronous data flow programs on a many-core
// processor" (RTNS 2016), with the O(n⁴) worst-case complexity proved in
// Rihani's thesis.
//
// The algorithm alternates two global passes until the whole schedule
// stabilizes (Section III of the DATE 2020 paper):
//
//   - the interference fixed point recomputes, with all release dates
//     frozen, the interference received by every task from every other
//     task whose execution window overlaps (same bank, different core),
//     refreshing all response times R_i = C_i + I_i and repeating until the
//     response times are stable (growth extends windows, which can create
//     new overlaps);
//   - the release fixed point recomputes every release date as the maximum
//     of the task's minimal release date, the finish dates of its
//     dependencies and the finish date of its same-core predecessor,
//     iterating (Jacobi, from the minimal release dates up) until stable
//     under the frozen response times.
//
// Iteration starts from the interference-free schedule and repeats the pair
// of fixed points until neither changes anything. Every interference round
// rescans all O(n²) task pairs, each inner fixed point may need O(n)
// rounds, and the outer alternation repeats them again: the O(n⁴) behaviour
// the paper measures on this baseline.
//
// Precision: the analysis equations (earliest releases + window-overlap
// interference) admit several consistent solutions. The incremental
// scheduler constructs the *least* fixed point — the operational
// time-triggered schedule. This global iteration freezes release dates
// while response times inflate, so transiently extended windows can create
// overlaps that then sustain themselves; on such instances the baseline
// converges to a greater, more pessimistic fixed point (both outcomes pass
// the independent sched.Check validator; the integration tests assert the
// baseline never reports *less* interference than the incremental
// scheduler and that the two coincide on instances without this feedback,
// such as the paper's Figure 1). The paper's own evaluation compares the
// two algorithms on runtime only. Do not use this package for anything but
// baseline measurements.
//
// Like the incremental package, the iteration core reads a compiled
// engine.Image; the per-window interference recomputation is the image-side
// twin of sched.WindowInterference, kept bit-identical to it (the checker
// keeps using the graph-based original, so a port bug cannot hide in both).
// Package-level Schedule stays the compatibility compile-per-call wrapper;
// the engine backend ("fixpoint") analyzes pre-compiled images.
package fixpoint

import (
	"github.com/mia-rt/mia/internal/arbiter"
	"github.com/mia-rt/mia/internal/engine"
	"github.com/mia-rt/mia/internal/model"
	"github.com/mia-rt/mia/internal/sched"
)

// Algorithm is the name recorded in results produced by this package.
const Algorithm = "fixpoint"

// Schedule computes the same schedule as the incremental package using the
// original RTNS 2016 double fixed-point iteration. It returns an error
// wrapping sched.ErrUnschedulable when the deadline is crossed, when the
// per-core orders deadlock against the DAG, or when the iteration
// oscillates without converging (treated as unschedulable, as crossing the
// deadline eventually would be).
//
// Schedule is the compatibility wrapper around the engine: it compiles a
// fresh image on every call. Callers that analyze the same graph many times
// should engine.Compile once and go through the engine façade.
func Schedule(g *model.Graph, opts sched.Options) (*sched.Result, error) {
	img, err := engine.Compile(g, opts)
	if err != nil {
		return nil, err
	}
	return analyze(img, img.NewOrders(), img.Opts.Cancel)
}

// analyze runs the double fixed-point iteration over a compiled image,
// reading the per-core orders from ord.
func analyze(img *engine.Image, ord *engine.Orders, cancel <-chan struct{}) (*sched.Result, error) {
	n := img.NumTasks
	deadline := img.Opts.Deadline
	res := sched.NewResult(Algorithm, n, img.Banks)

	// Same-core predecessor table from the per-core execution orders.
	pred := make([]model.TaskID, n)
	for i := range pred {
		pred[i] = model.NoTask
	}
	for k := 0; k < img.Cores; k++ {
		order := ord.Order(model.CoreID(k))
		for pos := 1; pos < len(order); pos++ {
			pred[order[pos]] = order[pos-1]
		}
	}

	rel := res.Release
	resp := res.Response
	inter := res.Interference
	copy(resp, img.WCET)

	fin := make([]model.Cycles, n)
	newRel := make([]model.Cycles, n)
	newInter := make([]model.Cycles, n)
	w := newWindower(img)

	// Parallel interference pass (Options.Parallelism > 1): each partition
	// recomputes a fixed task range with its own windower (the gather and
	// competitor buffers are per-instance scratch); newInter[i] and
	// res.PerBank[i] writes are disjoint per task and every per-task value
	// is independent of the others within a round, so the pass is
	// bit-identical to the sequential loop at any partition count. Workers
	// are scoped to this call by the deferred Close.
	parts := img.Opts.Workers()
	if parts > n {
		parts = n
	}
	var kern *engine.Kernel
	if parts > 1 {
		ws := make([]*windower, parts)
		ws[0] = w
		for p := 1; p < parts; p++ {
			ws[p] = newWindower(img)
		}
		kern = engine.NewKernel(parts)
		kern.SetTask(func(part int) {
			lo, hi := engine.PartitionRange(n, parts, part)
			for i := lo; i < hi; i++ {
				newInter[i] = ws[part].interference(rel, fin, model.TaskID(i), res.PerBank[i])
			}
		})
		defer kern.Close()
	}

	// Initial schedule: releases under zero interference.
	if err := releasePass(img, pred, resp, rel, newRel, deadline); err != nil {
		return nil, err
	}

	// Safety bound on outer rounds: converging instances stabilize within
	// O(n) alternations; exceeding the bound means the release and
	// interference passes are feeding an oscillation, which the original
	// algorithm only exits by crossing the deadline.
	maxOuter := 4*n + 16

	for outer := 0; ; outer++ {
		if outer >= maxOuter {
			return nil, &sched.UnschedulableError{
				Reason: "deadlock", Time: horizon(rel, resp), Task: model.NoTask,
			}
		}
		res.Iterations = outer + 1
		changed := false

		// First fixed point: interference under frozen release dates. Each
		// round rescans all O(n²) task pairs; response-time growth extends
		// windows, which can create new overlaps, so the pass repeats until
		// the response times stop moving — up to O(n) rounds.
		for {
			if canceled(cancel) {
				return nil, sched.ErrCanceled
			}
			for i := 0; i < n; i++ {
				fin[i] = rel[i] + resp[i]
			}
			if kern != nil {
				kern.Run()
			} else {
				for i := 0; i < n; i++ {
					newInter[i] = w.interference(rel, fin, model.TaskID(i), res.PerBank[i])
				}
			}
			interChanged := false
			for i := 0; i < n; i++ {
				if newInter[i] != inter[i] {
					interChanged = true
				}
			}
			for i := 0; i < n; i++ {
				if newInter[i] != inter[i] {
					inter[i] = newInter[i]
					resp[i] = img.WCET[i] + inter[i]
				}
			}
			if !interChanged {
				break
			}
			changed = true
			if h := horizon(rel, resp); h > deadline {
				return nil, sched.DeadlineExceeded(h)
			}
		}

		// Release pass: recompute all release dates from the minimal
		// releases up, under the frozen response times.
		copy(newRel, rel)
		if err := releasePass(img, pred, resp, rel, newRel, deadline); err != nil {
			return nil, err
		}
		for i := 0; i < n; i++ {
			if rel[i] != newRel[i] {
				changed = true
			}
		}
		copy(rel, newRel)

		if !changed {
			break
		}
	}

	res.RecomputeMakespan()
	if res.Makespan > deadline {
		return nil, sched.DeadlineExceeded(res.Makespan)
	}
	return res, nil
}

// canceled polls a cancellation channel without blocking.
func canceled(cancel <-chan struct{}) bool {
	if cancel == nil {
		return false
	}
	select {
	case <-cancel:
		return true
	default:
		return false
	}
}

// windower recomputes one task's window-overlap interference from the
// image: the exact semantics of sched.WindowInterference (overlapping
// interferers gathered in ascending task-ID order, competitor demands
// merged per core in first-seen order unless the options request separate
// competitors, one arbiter bound per shared bank), with the gather and
// competitor buffers hoisted out of the per-call path. The schedule checker
// keeps using the graph-based original, so the two implementations verify
// each other through the differential suites.
type windower struct {
	img         *engine.Image
	arb         arbiter.Arbiter
	separate    bool
	totalDemand []model.Accesses // per task, for the zero-demand early out
	overlapping []model.TaskID
	comps       []arbiter.Request
}

func newWindower(img *engine.Image) *windower {
	w := &windower{
		img:         img,
		arb:         img.Opts.Arbiter,
		separate:    img.Opts.SeparateCompetitors,
		totalDemand: make([]model.Accesses, img.NumTasks),
	}
	for i := 0; i < img.NumTasks; i++ {
		for _, d := range img.DemandRow(model.TaskID(i)) {
			w.totalDemand[i] += d
		}
	}
	return w
}

// interference computes the total interference received by dst given every
// task's window, writing the per-bank split into perBank (length Banks).
func (w *windower) interference(rel, fin []model.Cycles, dst model.TaskID, perBank []model.Cycles) model.Cycles {
	img := w.img
	var total model.Cycles
	for b := range perBank {
		perBank[b] = 0
	}
	if w.totalDemand[dst] == 0 {
		return 0
	}
	dstCore := img.CoreOf[dst]
	w.overlapping = w.overlapping[:0]
	for i := 0; i < img.NumTasks; i++ {
		id := model.TaskID(i)
		if id == dst || img.CoreOf[id] == dstCore {
			continue
		}
		if rel[dst] < fin[id] && rel[id] < fin[dst] {
			w.overlapping = append(w.overlapping, id)
		}
	}
	if len(w.overlapping) == 0 {
		return 0
	}
	dstRow := img.DemandRow(dst)
	for b := 0; b < img.Banks; b++ {
		demand := dstRow[b]
		if demand == 0 {
			continue
		}
		comps := w.comps[:0]
		for _, src := range w.overlapping {
			wd := img.DemandRow(src)[b]
			if wd == 0 {
				continue
			}
			srcCore := img.CoreOf[src]
			if w.separate {
				comps = append(comps, arbiter.Request{Core: srcCore, Demand: wd})
				continue
			}
			merged := false
			for j := range comps {
				if comps[j].Core == srcCore {
					comps[j].Demand += wd
					merged = true
					break
				}
			}
			if !merged {
				comps = append(comps, arbiter.Request{Core: srcCore, Demand: wd})
			}
		}
		w.comps = comps
		if len(comps) == 0 {
			continue
		}
		bound := w.arb.Bound(arbiter.Request{Core: dstCore, Demand: demand}, comps, model.BankID(b))
		perBank[b] = bound
		total += bound
	}
	return total
}

// releasePass computes, into out, the release dates satisfying
// rel_i = max(m_i, max_{j∈deps} rel_j+R_j, rel_pred+R_pred) by Jacobi
// iteration from the minimal release dates, with the response times frozen.
// rel is only read for the deadline horizon; out receives the result. The
// pass needs at most depth(G) ≤ n rounds; needing more reveals a cycle
// between the DAG and the per-core orders — the cross-core deadlock.
func releasePass(img *engine.Image, pred []model.TaskID, resp []model.Cycles, rel, out []model.Cycles, deadline model.Cycles) error {
	n := img.NumTasks
	copy(out, img.MinRelease)
	next := make([]model.Cycles, n)
	for round := 0; ; round++ {
		if round > n+1 {
			return sched.Deadlock(horizon(out, resp), model.NoTask)
		}
		changed := false
		for i := 0; i < n; i++ {
			id := model.TaskID(i)
			want := img.MinRelease[i]
			for _, p := range img.Preds(id) {
				if f := out[p] + resp[p]; f > want {
					want = f
				}
			}
			if p := pred[id]; p != model.NoTask {
				if f := out[p] + resp[p]; f > want {
					want = f
				}
			}
			next[i] = want
			if want != out[i] {
				changed = true
			}
		}
		copy(out, next)
		if !changed {
			return nil
		}
		if h := horizon(out, resp); h > deadline {
			return sched.DeadlineExceeded(h)
		}
	}
}

func horizon(rel, resp []model.Cycles) model.Cycles {
	var h model.Cycles
	for i := range rel {
		if f := rel[i] + resp[i]; f > h {
			h = f
		}
	}
	return h
}
