package fixpoint

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/mia-rt/mia/internal/arbiter"
	"github.com/mia-rt/mia/internal/gen"
	"github.com/mia-rt/mia/internal/sched"
	"github.com/mia-rt/mia/internal/sched/incremental"
)

var update = flag.Bool("update", false, "rewrite golden files with current results")

// TestAgreementGolden pins the exact incremental-vs-baseline agreement rates
// on a fixed corpus into a checked-in golden file. The broader
// cross-validation test asserts loose thresholds (≥ 60% identical
// instances); this one instead notices any drift at all: both algorithms are
// deterministic, so a change in either — or in the generator, or in the
// arbiter bounds — shows up as a golden diff and must be reviewed
// deliberately (run with -update to accept).
func TestAgreementGolden(t *testing.T) {
	configs := []struct {
		name              string
		layers, layerSize int
		cores, banks      int
		shared            bool
	}{
		{"ls-deep", 8, 3, 3, 3, false},
		{"nl-wide", 3, 10, 8, 8, false},
		{"contended", 5, 5, 4, 1, true},
		{"balanced", 5, 6, 4, 4, false},
	}
	opts := sched.Options{Arbiter: arbiter.NewRoundRobin(1)}

	var b strings.Builder
	fmt.Fprintf(&b, "# incremental vs fixpoint agreement (fixed corpus, round-robin L=1)\n")
	var allEq, allTotal, allTAgree, allTTotal int
	for _, cfg := range configs {
		equal, total := 0, 0
		tasksAgree, tasksTotal := 0, 0
		for seed := int64(1); seed <= 25; seed++ {
			p := gen.NewParams(cfg.layers, cfg.layerSize)
			p.Seed = seed
			p.Cores, p.Banks, p.SharedBank = cfg.cores, cfg.banks, cfg.shared
			g := gen.MustLayered(p)
			fast, err := incremental.Schedule(g, opts)
			if err != nil {
				t.Fatalf("%s seed %d: incremental: %v", cfg.name, seed, err)
			}
			slow, err := Schedule(g, opts)
			if err != nil {
				t.Fatalf("%s seed %d: fixpoint: %v", cfg.name, seed, err)
			}
			total++
			if fast.Equal(slow) {
				equal++
			}
			for i := range fast.Release {
				tasksTotal++
				if fast.Release[i] == slow.Release[i] && fast.Response[i] == slow.Response[i] {
					tasksAgree++
				}
			}
		}
		fmt.Fprintf(&b, "%s: identical %d/%d instances, per-task %d/%d\n",
			cfg.name, equal, total, tasksAgree, tasksTotal)
		allEq += equal
		allTotal += total
		allTAgree += tasksAgree
		allTTotal += tasksTotal
	}
	fmt.Fprintf(&b, "overall: identical %d/%d instances (%.1f%%), per-task %d/%d (%.1f%%)\n",
		allEq, allTotal, 100*float64(allEq)/float64(allTotal),
		allTAgree, allTTotal, 100*float64(allTAgree)/float64(allTTotal))
	got := b.String()

	golden := filepath.Join("testdata", "agreement.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("updated %s", golden)
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if got != string(want) {
		t.Errorf("agreement drifted from golden file (run with -update to accept):\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}
