package fixpoint

import (
	"errors"
	"testing"

	"github.com/mia-rt/mia/internal/arbiter"
	"github.com/mia-rt/mia/internal/gen"
	"github.com/mia-rt/mia/internal/model"
	"github.com/mia-rt/mia/internal/sched"
	"github.com/mia-rt/mia/internal/sched/incremental"
)

func TestFigure1(t *testing.T) {
	g := gen.Figure1()
	opts := sched.Options{Arbiter: arbiter.NewRoundRobin(1)}
	res, err := Schedule(g, opts)
	if err != nil {
		t.Fatalf("Schedule: %v", err)
	}
	if res.Makespan != 7 {
		t.Errorf("makespan = %d, want 7", res.Makespan)
	}
	wantInter := []model.Cycles{1, 1, 0, 2, 0}
	for i, w := range wantInter {
		if res.Interference[i] != w {
			t.Errorf("interference[n%d] = %d, want %d", i, res.Interference[i], w)
		}
	}
	if err := sched.Check(g, opts, res); err != nil {
		t.Errorf("Check: %v", err)
	}
}

func TestEmptyAndSingle(t *testing.T) {
	g := model.NewBuilder(2, 2).MustBuild()
	res, err := Schedule(g, sched.Options{})
	if err != nil || res.Makespan != 0 {
		t.Fatalf("empty: res=%v err=%v", res, err)
	}
	b := model.NewBuilder(1, 1)
	b.AddTask(model.TaskSpec{WCET: 9, MinRelease: 4})
	g = b.MustBuild()
	res, err = Schedule(g, sched.Options{})
	if err != nil {
		t.Fatalf("single: %v", err)
	}
	if res.Release[0] != 4 || res.Makespan != 13 {
		t.Fatalf("single: rel=%d makespan=%d", res.Release[0], res.Makespan)
	}
}

func TestDeadline(t *testing.T) {
	g := gen.Figure1()
	if _, err := Schedule(g, sched.Options{Deadline: 6}); !errors.Is(err, sched.ErrUnschedulable) {
		t.Fatalf("deadline 6: err = %v, want unschedulable", err)
	}
	// The baseline checks the deadline on every intermediate iterate
	// ("repeated until ... or the deadline is crossed", paper §III). On
	// Figure 1 its inner interference fixed point transiently inflates the
	// horizon to 9 before the release adjustment deflates it back to the
	// final makespan 7, so deadlines 7 and 8 are *conservatively* rejected
	// — one more way the incremental algorithm is strictly better.
	if _, err := Schedule(g, sched.Options{Deadline: 7}); !errors.Is(err, sched.ErrUnschedulable) {
		t.Fatalf("deadline 7: err = %v, want conservative unschedulable", err)
	}
	if _, err := Schedule(g, sched.Options{Deadline: 9}); err != nil {
		t.Fatalf("deadline 9: %v", err)
	}
}

func TestCrossCoreDeadlock(t *testing.T) {
	b := model.NewBuilder(2, 1)
	a := b.AddTask(model.TaskSpec{Name: "a", WCET: 1, Core: 0})
	bb := b.AddTask(model.TaskSpec{Name: "b", WCET: 1, Core: 0})
	c := b.AddTask(model.TaskSpec{Name: "c", WCET: 1, Core: 1})
	d := b.AddTask(model.TaskSpec{Name: "d", WCET: 1, Core: 1})
	b.AddEdge(d, a, 0)
	b.AddEdge(bb, c, 0)
	b.SetOrder(0, []model.TaskID{a, bb})
	b.SetOrder(1, []model.TaskID{c, d})
	g := b.MustBuild()
	if _, err := Schedule(g, sched.Options{}); !errors.Is(err, sched.ErrUnschedulable) {
		t.Fatalf("err = %v, want unschedulable (cross-core deadlock)", err)
	}
}

// TestCrossValidationAgainstIncremental compares the O(n⁴) baseline with
// the O(n²) incremental algorithm on the paper's benchmark family (random
// layer-by-layer DAGs with the published parameter ranges).
//
// The two are different safe analyses of the same problem: the analysis
// equations admit several consistent fixed points, the incremental
// algorithm constructs the operational least one, and the baseline's
// global iteration occasionally settles on a different (usually more
// pessimistic) one — see the package documentation. The assertions here
// are therefore:
//
//   - every baseline result passes the independent consistency checker
//     (it is a genuine fixed point of the analysis equations);
//   - on this fixed, deterministic instance matrix the two algorithms
//     produce bit-identical schedules on a solid majority of instances
//     (observed: 132 of 200, i.e. 66%);
//   - when they differ, the divergence is confined to a minority of tasks
//     (a single diverging task shifts its whole downstream cone), never a
//     wholesale disagreement (per-task agreement ≥ 75%; observed 82%).
func TestCrossValidationAgainstIncremental(t *testing.T) {
	configs := []struct {
		layers, layerSize int
		cores, banks      int
		shared            bool
	}{
		{4, 4, 4, 4, false},
		{4, 4, 4, 1, true},
		{6, 8, 16, 16, false},
		{8, 3, 3, 3, false},
		{2, 16, 16, 16, false},
		{10, 2, 2, 1, true},
		{5, 6, 4, 4, false},
		{3, 10, 8, 8, false},
	}
	total, equal := 0, 0
	var tasksTotal, tasksAgree int
	for _, cfg := range configs {
		for seed := int64(1); seed <= 25; seed++ {
			p := gen.NewParams(cfg.layers, cfg.layerSize)
			p.Seed = seed
			p.Cores, p.Banks, p.SharedBank = cfg.cores, cfg.banks, cfg.shared
			g := gen.MustLayered(p)
			opts := sched.Options{Arbiter: arbiter.NewRoundRobin(1)}

			fast, err := incremental.Schedule(g, opts)
			if err != nil {
				t.Fatalf("cfg %+v seed %d: incremental: %v", cfg, seed, err)
			}
			slow, err := Schedule(g, opts)
			if err != nil {
				t.Fatalf("cfg %+v seed %d: fixpoint: %v", cfg, seed, err)
			}
			if err := sched.Check(g, opts, slow); err != nil {
				t.Fatalf("cfg %+v seed %d: fixpoint check: %v", cfg, seed, err)
			}
			total++
			if fast.Equal(slow) {
				equal++
			}
			for i := range fast.Release {
				tasksTotal++
				if fast.Release[i] == slow.Release[i] && fast.Response[i] == slow.Response[i] {
					tasksAgree++
				}
			}
		}
	}
	if equal*100 < total*60 {
		t.Errorf("schedules identical on %d/%d instances, want ≥ 60%%", equal, total)
	}
	if tasksAgree*100 < tasksTotal*75 {
		t.Errorf("per-task agreement %d/%d, want ≥ 75%%", tasksAgree, tasksTotal)
	}
	t.Logf("identical schedules: %d/%d instances; per-task agreement %d/%d",
		equal, total, tasksAgree, tasksTotal)
}

// TestConsistentAcrossArbiters checks that the baseline produces valid
// fixed points under every arbitration policy (the paper's generality
// claim), and coincides with the incremental algorithm for the policies
// whose bounds do not depend on windows at all (none) on top of passing
// the checker for the rest.
func TestConsistentAcrossArbiters(t *testing.T) {
	arbiters := []arbiter.Arbiter{
		arbiter.NewRoundRobin(2),
		arbiter.NewHierarchicalRR(1, 2),
		arbiter.NewTDM(4, 2),
		arbiter.NewFixedPriority(1),
		arbiter.NewNone(),
	}
	p := gen.NewParams(5, 6)
	p.Cores, p.Banks = 4, 4
	for _, arb := range arbiters {
		for seed := int64(1); seed <= 3; seed++ {
			p.Seed = seed
			g := gen.MustLayered(p)
			opts := sched.Options{Arbiter: arb}
			slow, err := Schedule(g, opts)
			if err != nil {
				t.Fatalf("%s seed %d: fixpoint: %v", arb.Name(), seed, err)
			}
			if err := sched.Check(g, opts, slow); err != nil {
				t.Fatalf("%s seed %d: check: %v", arb.Name(), seed, err)
			}
			if arb.Name() == "none" {
				fast, err := incremental.Schedule(g, opts)
				if err != nil {
					t.Fatalf("%s seed %d: incremental: %v", arb.Name(), seed, err)
				}
				if !fast.Equal(slow) {
					t.Fatalf("interference-free schedules must coincide: %s", fast.Diff(slow))
				}
			}
		}
	}
}

func TestConsistentWithMinReleases(t *testing.T) {
	// Inject minimal release dates, which exercise the baseline's max()
	// release rule; results must stay consistent fixed points.
	p := gen.NewParams(4, 6)
	p.Cores, p.Banks = 4, 2
	for seed := int64(1); seed <= 5; seed++ {
		p.Seed = seed
		g := gen.MustLayered(p)
		for i, task := range g.Tasks() {
			task.MinRelease = model.Cycles((i % 7) * 400)
		}
		opts := sched.Options{}
		slow, err := Schedule(g, opts)
		if err != nil {
			t.Fatalf("seed %d: fixpoint: %v", seed, err)
		}
		if err := sched.Check(g, opts, slow); err != nil {
			t.Fatalf("seed %d: check: %v", seed, err)
		}
	}
}

func TestIterationsReported(t *testing.T) {
	g := gen.Figure1()
	res, err := Schedule(g, sched.Options{})
	if err != nil {
		t.Fatalf("Schedule: %v", err)
	}
	if res.Iterations < 1 {
		t.Errorf("Iterations = %d, want ≥ 1", res.Iterations)
	}
	if res.Algorithm != Algorithm {
		t.Errorf("Algorithm = %q", res.Algorithm)
	}
}
