package sched

import (
	"fmt"

	"github.com/mia-rt/mia/internal/model"
)

// Check verifies every invariant a valid time-triggered schedule must
// satisfy, independently of the algorithm that produced it:
//
//  1. shape: one entry per task, Response = WCET + Interference,
//     per-bank rows (when present) sum to the totals;
//  2. minimal releases: Release[i] ≥ MinRelease[i];
//  3. dependencies: Release[i] ≥ Finish[j] for every edge j→i;
//  4. core serialization: on each core, tasks execute in the graph's order
//     with non-overlapping windows;
//  5. releases are as early as possible over the event grid:
//     Release[i] = max(MinRelease[i], finish of dependencies, finish of the
//     same-core predecessor) — the paper's time-triggered release rule;
//  6. interference consistency: every task's interference equals the bound
//     recomputed from scratch over the final execution windows
//     (WindowInterference), i.e. the schedule is a fixed point of the
//     analysis equations;
//  7. makespan: Makespan = max finish, and Makespan ≤ Deadline if one is
//     configured.
//
// Check is deliberately O(n²·b): it exists to cross-validate the optimized
// schedulers in tests, not to be fast.
func Check(g *model.Graph, opts Options, r *Result) error {
	n := g.NumTasks()
	if len(r.Release) != n || len(r.Response) != n || len(r.Interference) != n {
		return fmt.Errorf("sched: result shape mismatch: %d tasks, %d/%d/%d entries",
			n, len(r.Release), len(r.Response), len(r.Interference))
	}

	// (1) shape.
	for i := 0; i < n; i++ {
		id := model.TaskID(i)
		t := g.Task(id)
		if r.Interference[i] < 0 {
			return fmt.Errorf("sched: %s has negative interference %d", id, r.Interference[i])
		}
		if r.Response[i] != t.WCET+r.Interference[i] {
			return fmt.Errorf("sched: %s response %d ≠ WCET %d + interference %d",
				id, r.Response[i], t.WCET, r.Interference[i])
		}
		if r.PerBank != nil {
			var sum model.Cycles
			for _, v := range r.PerBank[i] {
				if v < 0 {
					return fmt.Errorf("sched: %s has negative per-bank interference", id)
				}
				sum += v
			}
			if sum != r.Interference[i] {
				return fmt.Errorf("sched: %s per-bank interference sums to %d, total says %d",
					id, sum, r.Interference[i])
			}
		}
	}

	fin := make([]model.Cycles, n)
	for i := 0; i < n; i++ {
		fin[i] = r.Finish(model.TaskID(i))
	}

	// (2) minimal releases.
	for i, t := range g.Tasks() {
		if r.Release[i] < t.MinRelease {
			return fmt.Errorf("sched: %s released at %d before its minimal release %d",
				t.ID, r.Release[i], t.MinRelease)
		}
	}

	// (3) dependencies.
	for _, e := range g.Edges() {
		if r.Release[e.To] < fin[e.From] {
			return fmt.Errorf("sched: %s released at %d before dependency %s finishes at %d",
				e.To, r.Release[e.To], e.From, fin[e.From])
		}
	}

	// (4) core serialization and (5) earliest-release rule.
	pred := make([]model.TaskID, n) // same-core predecessor, NoTask for firsts
	for k := 0; k < g.Cores; k++ {
		order := g.Order(model.CoreID(k))
		for pos, id := range order {
			if pos == 0 {
				pred[id] = model.NoTask
				continue
			}
			prev := order[pos-1]
			pred[id] = prev
			if r.Release[id] < fin[prev] {
				return fmt.Errorf("sched: core %d runs %s at %d overlapping predecessor %s finishing at %d",
					k, id, r.Release[id], prev, fin[prev])
			}
		}
	}
	for i, t := range g.Tasks() {
		id := model.TaskID(i)
		want := t.MinRelease
		for _, p := range g.Predecessors(id) {
			if fin[p] > want {
				want = fin[p]
			}
		}
		if p := pred[id]; p != model.NoTask && fin[p] > want {
			want = fin[p]
		}
		if r.Release[id] != want {
			return fmt.Errorf("sched: %s released at %d, earliest-release rule says %d",
				id, r.Release[id], want)
		}
	}

	// (6) interference consistency.
	arb := opts.EffectiveArbiter()
	perBank := make([]model.Cycles, g.Banks)
	for i := 0; i < n; i++ {
		id := model.TaskID(i)
		got := WindowInterference(g, arb, opts.SeparateCompetitors, r.Release, fin, id, perBank)
		if got != r.Interference[i] {
			return fmt.Errorf("sched: %s interference %d, window recomputation says %d",
				id, r.Interference[i], got)
		}
		if r.PerBank != nil {
			for b := range perBank {
				if perBank[b] != r.PerBank[i][b] {
					return fmt.Errorf("sched: %s bank %d interference %d, recomputation says %d",
						id, b, r.PerBank[i][b], perBank[b])
				}
			}
		}
	}

	// (7) makespan.
	var want model.Cycles
	for i := 0; i < n; i++ {
		if fin[i] > want {
			want = fin[i]
		}
	}
	if r.Makespan != want {
		return fmt.Errorf("sched: makespan %d, max finish is %d", r.Makespan, want)
	}
	if opts.Deadline > 0 && r.Makespan > opts.Deadline {
		return fmt.Errorf("sched: makespan %d exceeds deadline %d but result was reported schedulable",
			r.Makespan, opts.Deadline)
	}
	return nil
}
