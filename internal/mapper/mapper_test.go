package mapper

import (
	"strings"
	"testing"

	"github.com/mia-rt/mia/internal/model"
	"github.com/mia-rt/mia/internal/sched"
	"github.com/mia-rt/mia/internal/sched/incremental"
)

// diamondProblem: s → {a, b, c} → t with distinct WCETs.
func diamondProblem() *Problem {
	return &Problem{
		Cores: 2, Banks: 2,
		Specs: []Spec{
			{Name: "s", WCET: 10, Local: 5},
			{Name: "a", WCET: 30, Local: 5},
			{Name: "b", WCET: 20, Local: 5},
			{Name: "c", WCET: 10, Local: 5},
			{Name: "t", WCET: 10, Local: 5},
		},
		Edges: []Edge{
			{From: 0, To: 1, Words: 2}, {From: 0, To: 2, Words: 2}, {From: 0, To: 3, Words: 2},
			{From: 1, To: 4, Words: 2}, {From: 2, To: 4, Words: 2}, {From: 3, To: 4, Words: 2},
		},
	}
}

func allStrategies() []Strategy {
	return []Strategy{RoundRobinLayers{}, LoadBalance{}, ListScheduling{}}
}

func TestAllStrategiesProduceSchedulableGraphs(t *testing.T) {
	for _, s := range allStrategies() {
		g, err := Map(diamondProblem(), s)
		if err != nil {
			t.Errorf("%s: %v", s.Name(), err)
			continue
		}
		if err := g.Validate(); err != nil {
			t.Errorf("%s: validate: %v", s.Name(), err)
			continue
		}
		res, err := incremental.Schedule(g, sched.Options{})
		if err != nil {
			t.Errorf("%s: schedule: %v", s.Name(), err)
			continue
		}
		if err := sched.Check(g, sched.Options{}, res); err != nil {
			t.Errorf("%s: check: %v", s.Name(), err)
		}
	}
}

func TestRoundRobinLayersRule(t *testing.T) {
	p := &Problem{
		Cores: 2, Banks: 2,
		Specs: []Spec{{WCET: 1}, {WCET: 1}, {WCET: 1}, {WCET: 1}}, // one layer of 4
	}
	assign, err := RoundRobinLayers{}.Assign(p)
	if err != nil {
		t.Fatal(err)
	}
	want := []model.CoreID{0, 1, 0, 1}
	for i, k := range want {
		if assign[i] != k {
			t.Errorf("task %d on core %d, want %d", i, assign[i], k)
		}
	}
}

func TestLoadBalanceBalances(t *testing.T) {
	// One layer: WCETs 40, 30, 20, 10 on 2 cores → LPT gives {40,10} and
	// {30,20}: perfectly balanced at 50/50.
	p := &Problem{
		Cores: 2, Banks: 2,
		Specs: []Spec{{WCET: 40}, {WCET: 30}, {WCET: 20}, {WCET: 10}},
	}
	assign, err := LoadBalance{}.Assign(p)
	if err != nil {
		t.Fatal(err)
	}
	load := map[model.CoreID]model.Cycles{}
	for i, k := range assign {
		load[k] += p.Specs[i].WCET
	}
	if load[0] != 50 || load[1] != 50 {
		t.Errorf("loads = %v, want 50/50", load)
	}
}

func TestListSchedulingPrefersCriticalPath(t *testing.T) {
	// Chain s→m→t plus independent task x. The chain dominates the rank,
	// and x must land on the other core (earliest availability), giving a
	// makespan equal to the chain length under no interference.
	p := &Problem{
		Cores: 2, Banks: 2,
		Specs: []Spec{
			{Name: "s", WCET: 10},
			{Name: "m", WCET: 10},
			{Name: "t", WCET: 10},
			{Name: "x", WCET: 5},
		},
		Edges: []Edge{{From: 0, To: 1}, {From: 1, To: 2}},
	}
	g, err := Map(p, ListScheduling{})
	if err != nil {
		t.Fatal(err)
	}
	chainCore := g.Task(0).Core
	if g.Task(3).Core == chainCore {
		t.Errorf("independent task mapped onto the critical-path core")
	}
	res, err := incremental.Schedule(g, sched.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan != 30 {
		t.Errorf("makespan = %d, want 30 (chain length)", res.Makespan)
	}
}

func TestMapErrors(t *testing.T) {
	p := diamondProblem()
	p.Cores = 0
	if _, err := Map(p, RoundRobinLayers{}); err == nil {
		t.Error("zero cores accepted")
	}
	// Cyclic problem.
	cyc := &Problem{
		Cores: 1, Banks: 1,
		Specs: []Spec{{WCET: 1}, {WCET: 1}},
		Edges: []Edge{{From: 0, To: 1}, {From: 1, To: 0}},
	}
	for _, s := range allStrategies() {
		if _, err := Map(cyc, s); err == nil || !strings.Contains(err.Error(), "cycle") {
			t.Errorf("%s: cycle not rejected: %v", s.Name(), err)
		}
	}
	// Out-of-range edge.
	bad := &Problem{Cores: 1, Banks: 1, Specs: []Spec{{WCET: 1}}, Edges: []Edge{{From: 0, To: 5}}}
	if _, err := Map(bad, RoundRobinLayers{}); err == nil {
		t.Error("out-of-range edge accepted")
	}
}

func TestStrategyNames(t *testing.T) {
	seen := map[string]bool{}
	for _, s := range allStrategies() {
		if s.Name() == "" || seen[s.Name()] {
			t.Errorf("bad or duplicate name %q", s.Name())
		}
		seen[s.Name()] = true
	}
}

func TestListSchedulingBeatsNaiveOnImbalance(t *testing.T) {
	// A wide layer of mixed WCETs behind a source: list scheduling should
	// never produce a worse interference-free makespan than the cyclic
	// rule on this shape.
	p := &Problem{
		Cores: 4, Banks: 4,
		Specs: []Spec{{Name: "src", WCET: 5}},
	}
	for i := 0; i < 12; i++ {
		p.Specs = append(p.Specs, Spec{WCET: model.Cycles(10 + 90*(i%3))})
		p.Edges = append(p.Edges, Edge{From: 0, To: i + 1})
	}
	gCyclic, err := Map(p, RoundRobinLayers{})
	if err != nil {
		t.Fatal(err)
	}
	gList, err := Map(p, ListScheduling{})
	if err != nil {
		t.Fatal(err)
	}
	cpCyclic, _ := scheduleMakespan(t, gCyclic)
	cpList, _ := scheduleMakespan(t, gList)
	if cpList > cpCyclic {
		t.Errorf("list scheduling makespan %d > cyclic %d", cpList, cpCyclic)
	}
}

func scheduleMakespan(t *testing.T, g *model.Graph) (model.Cycles, *sched.Result) {
	t.Helper()
	res, err := incremental.Schedule(g, sched.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return res.Makespan, res
}
