// Package mapper implements the framework stage *upstream* of the paper's
// analysis: assigning tasks of a dependency DAG to cores and fixing each
// core's execution order. The DATE 2020 paper assumes this stage was
// already performed (it cites Graillat's code-generation framework, where
// mapping and ordering happen before release dates and WCRTs are computed);
// this package provides the standard strategies so the library is usable on
// raw, unmapped DAGs:
//
//   - RoundRobinLayers — the evaluation's own rule: tasks of each DAG layer
//     assigned cyclically, Core(i mod cores) (Tobita–Kasahara style);
//   - LoadBalance — greedy longest-processing-time assignment per layer,
//     minimizing per-core WCET load;
//   - ListScheduling — HEFT-flavored list scheduling: tasks in topological
//     order by critical-path priority, each placed on the core with the
//     earliest (interference-free) availability.
//
// All strategies order each core topologically, which Validate guarantees
// to be deadlock-free against same-core dependencies; cross-core deadlocks
// cannot arise from a single topological order.
package mapper

import (
	"fmt"
	"sort"

	"github.com/mia-rt/mia/internal/model"
)

// Spec is an unmapped task: the mapper's input unit.
type Spec struct {
	Name       string
	WCET       model.Cycles
	MinRelease model.Cycles
	Local      model.Accesses
}

// Edge is a dependency between unmapped tasks, by Spec index.
type Edge struct {
	From, To int
	Words    model.Accesses
}

// Problem is an unmapped DAG plus the target platform geometry.
type Problem struct {
	Specs []Spec
	Edges []Edge
	Cores int
	Banks int
	// BankPolicy is passed through to demand compilation (nil = builder
	// default).
	BankPolicy func(model.CoreID) model.BankID
}

// Strategy assigns a core to every task of a problem. Implementations
// receive the dependency structure via the problem and must return one
// CoreID per spec.
type Strategy interface {
	Name() string
	Assign(p *Problem) ([]model.CoreID, error)
}

// Map applies the strategy and builds the scheduled-analysis-ready graph:
// tasks mapped, per-core orders topological, demands compiled.
func Map(p *Problem, s Strategy) (*model.Graph, error) {
	if p.Cores < 1 {
		return nil, fmt.Errorf("mapper: %d cores", p.Cores)
	}
	assignment, err := s.Assign(p)
	if err != nil {
		return nil, err
	}
	if len(assignment) != len(p.Specs) {
		return nil, fmt.Errorf("mapper: strategy %s assigned %d of %d tasks", s.Name(), len(assignment), len(p.Specs))
	}
	b := model.NewBuilder(p.Cores, p.Banks)
	if p.BankPolicy != nil {
		b.SetBankPolicy(p.BankPolicy)
	}
	for i, spec := range p.Specs {
		b.AddTask(model.TaskSpec{
			Name: spec.Name, WCET: spec.WCET, MinRelease: spec.MinRelease,
			Local: spec.Local, Core: assignment[i],
		})
	}
	for _, e := range p.Edges {
		b.AddEdge(model.TaskID(e.From), model.TaskID(e.To), e.Words)
	}
	return b.Build()
}

// layersOf computes each task's DAG depth (layer index) from the problem's
// edges, or an error on cycles.
func layersOf(p *Problem) ([]int, error) {
	n := len(p.Specs)
	indeg := make([]int, n)
	succs := make([][]int, n)
	for _, e := range p.Edges {
		if e.From < 0 || e.From >= n || e.To < 0 || e.To >= n {
			return nil, fmt.Errorf("mapper: edge %d→%d out of range", e.From, e.To)
		}
		indeg[e.To]++
		succs[e.From] = append(succs[e.From], e.To)
	}
	layer := make([]int, n)
	queue := make([]int, 0, n)
	for i := 0; i < n; i++ {
		if indeg[i] == 0 {
			queue = append(queue, i)
		}
	}
	seen := 0
	for len(queue) > 0 {
		id := queue[0]
		queue = queue[1:]
		seen++
		for _, s := range succs[id] {
			if layer[id]+1 > layer[s] {
				layer[s] = layer[id] + 1
			}
			indeg[s]--
			if indeg[s] == 0 {
				queue = append(queue, s)
			}
		}
	}
	if seen != n {
		return nil, fmt.Errorf("mapper: dependency cycle in problem")
	}
	return layer, nil
}

// RoundRobinLayers is the evaluation's mapping rule: the i-th task of each
// layer goes to core i mod cores.
type RoundRobinLayers struct{}

// Name implements Strategy.
func (RoundRobinLayers) Name() string { return "round-robin-layers" }

// Assign implements Strategy.
func (RoundRobinLayers) Assign(p *Problem) ([]model.CoreID, error) {
	layer, err := layersOf(p)
	if err != nil {
		return nil, err
	}
	counter := map[int]int{}
	out := make([]model.CoreID, len(p.Specs))
	for i := range p.Specs {
		out[i] = model.CoreID(counter[layer[i]] % p.Cores)
		counter[layer[i]]++
	}
	return out, nil
}

// LoadBalance greedily balances summed WCET per core within each layer
// (longest-processing-time-first).
type LoadBalance struct{}

// Name implements Strategy.
func (LoadBalance) Name() string { return "load-balance" }

// Assign implements Strategy.
func (LoadBalance) Assign(p *Problem) ([]model.CoreID, error) {
	layer, err := layersOf(p)
	if err != nil {
		return nil, err
	}
	byLayer := map[int][]int{}
	maxLayer := 0
	for i := range p.Specs {
		byLayer[layer[i]] = append(byLayer[layer[i]], i)
		if layer[i] > maxLayer {
			maxLayer = layer[i]
		}
	}
	out := make([]model.CoreID, len(p.Specs))
	load := make([]model.Cycles, p.Cores)
	for l := 0; l <= maxLayer; l++ {
		ids := byLayer[l]
		// Longest WCET first, ties by index for determinism.
		sort.Slice(ids, func(a, b int) bool {
			if p.Specs[ids[a]].WCET != p.Specs[ids[b]].WCET {
				return p.Specs[ids[a]].WCET > p.Specs[ids[b]].WCET
			}
			return ids[a] < ids[b]
		})
		for _, id := range ids {
			best := 0
			for k := 1; k < p.Cores; k++ {
				if load[k] < load[best] {
					best = k
				}
			}
			out[id] = model.CoreID(best)
			load[best] += p.Specs[id].WCET
		}
	}
	return out, nil
}

// ListScheduling is HEFT-flavored list scheduling: tasks are ranked by
// upward critical-path length (WCET-weighted), then greedily placed, in
// rank order, on the core that can start them earliest given dependency
// finish times and core availability (interference ignored at mapping time
// — it is not known until the downstream analysis runs).
type ListScheduling struct{}

// Name implements Strategy.
func (ListScheduling) Name() string { return "list-scheduling" }

// Assign implements Strategy.
func (ListScheduling) Assign(p *Problem) ([]model.CoreID, error) {
	n := len(p.Specs)
	if _, err := layersOf(p); err != nil {
		return nil, err // cycle check
	}
	succs := make([][]int, n)
	preds := make([][]int, n)
	for _, e := range p.Edges {
		succs[e.From] = append(succs[e.From], e.To)
		preds[e.To] = append(preds[e.To], e.From)
	}
	// Upward rank: WCET + max over successors (memoized reverse-topological
	// walk; the DAG is already verified acyclic).
	rank := make([]model.Cycles, n)
	var computeRank func(int) model.Cycles
	computeRank = func(id int) model.Cycles {
		if rank[id] != 0 {
			return rank[id]
		}
		r := p.Specs[id].WCET
		var tail model.Cycles
		for _, s := range succs[id] {
			if v := computeRank(s); v > tail {
				tail = v
			}
		}
		rank[id] = r + tail
		return rank[id]
	}
	order := make([]int, n)
	for i := range order {
		order[i] = i
		computeRank(i)
	}
	sort.Slice(order, func(a, b int) bool {
		if rank[order[a]] != rank[order[b]] {
			return rank[order[a]] > rank[order[b]]
		}
		return order[a] < order[b]
	})

	out := make([]model.CoreID, n)
	coreFree := make([]model.Cycles, p.Cores)
	finish := make([]model.Cycles, n)
	placed := make([]bool, n)
	for len(order) > 0 {
		// Pick the highest-ranked task whose predecessors are all placed
		// (list scheduling processes a ready list).
		pick := -1
		for i, id := range order {
			ready := true
			for _, pr := range preds[id] {
				if !placed[pr] {
					ready = false
					break
				}
			}
			if ready {
				pick = i
				break
			}
		}
		if pick < 0 {
			return nil, fmt.Errorf("mapper: no ready task (cycle?)")
		}
		id := order[pick]
		order = append(order[:pick], order[pick+1:]...)
		var depsReady model.Cycles = p.Specs[id].MinRelease
		for _, pr := range preds[id] {
			if finish[pr] > depsReady {
				depsReady = finish[pr]
			}
		}
		best, bestStart := 0, model.Infinity
		for k := 0; k < p.Cores; k++ {
			start := coreFree[k]
			if depsReady > start {
				start = depsReady
			}
			if start < bestStart {
				best, bestStart = k, start
			}
		}
		out[id] = model.CoreID(best)
		finish[id] = bestStart + p.Specs[id].WCET
		coreFree[best] = finish[id]
		placed[id] = true
	}
	return out, nil
}
