package dataflow_test

import (
	"fmt"

	"github.com/mia-rt/mia/internal/dataflow"
	"github.com/mia-rt/mia/internal/mapper"
)

// Example_compile runs the whole front end on a multirate pipeline: balance
// equations, single-rate expansion, mapping — producing the task graph the
// interference analysis consumes.
func Example_compile() {
	g := &dataflow.Graph{}
	src := g.AddActor(dataflow.Actor{Name: "src", WCET: 10, Local: 4})
	dsp := g.AddActor(dataflow.Actor{Name: "dsp", WCET: 25, Local: 8})
	g.AddChannel(dataflow.Channel{From: src, To: dsp, Produce: 2, Consume: 3, TokenWords: 16})

	reps, err := g.Repetitions()
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println("repetition vector:", reps)

	mg, err := g.Compile(2, 2, mapper.ListScheduling{})
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println("tasks after expansion:", mg.NumTasks())
	fmt.Println("edges:", len(mg.Edges()))
	// Output:
	// repetition vector: [3 2]
	// tasks after expansion: 5
	// edges: 4
}
