package dataflow

import (
	"encoding/json"
	"fmt"
	"io"

	"github.com/mia-rt/mia/internal/model"
)

// graphJSON is the on-disk form of an SDF graph, consumed by cmd/miaflow.
type graphJSON struct {
	Actors   []actorJSON   `json:"actors"`
	Channels []channelJSON `json:"channels"`
}

type actorJSON struct {
	Name  string         `json:"name"`
	WCET  model.Cycles   `json:"wcet"`
	Local model.Accesses `json:"local,omitempty"`
}

type channelJSON struct {
	From       int            `json:"from"`
	To         int            `json:"to"`
	Produce    int            `json:"produce"`
	Consume    int            `json:"consume"`
	Initial    int            `json:"initial,omitempty"`
	TokenWords model.Accesses `json:"tokenWords,omitempty"`
}

// ReadJSON parses an SDF graph from r. Rates default to 1 when omitted
// (homogeneous channels); validation happens at analysis time.
func ReadJSON(r io.Reader) (*Graph, error) {
	var in graphJSON
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&in); err != nil {
		return nil, fmt.Errorf("dataflow: parsing SDF JSON: %w", err)
	}
	g := &Graph{}
	for _, a := range in.Actors {
		g.AddActor(Actor{Name: a.Name, WCET: a.WCET, Local: a.Local})
	}
	for _, c := range in.Channels {
		if c.Produce == 0 {
			c.Produce = 1
		}
		if c.Consume == 0 {
			c.Consume = 1
		}
		g.AddChannel(Channel{
			From: c.From, To: c.To,
			Produce: c.Produce, Consume: c.Consume,
			Initial: c.Initial, TokenWords: c.TokenWords,
		})
	}
	return g, nil
}

// WriteJSON serializes the SDF graph.
func (g *Graph) WriteJSON(w io.Writer) error {
	out := graphJSON{}
	for _, a := range g.Actors {
		out.Actors = append(out.Actors, actorJSON{Name: a.Name, WCET: a.WCET, Local: a.Local})
	}
	for _, c := range g.Channels {
		out.Channels = append(out.Channels, channelJSON{
			From: c.From, To: c.To, Produce: c.Produce, Consume: c.Consume,
			Initial: c.Initial, TokenWords: c.TokenWords,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}
