// Package dataflow implements the front of the framework the paper builds
// on (Section I): applications are written as synchronous dataflow (SDF)
// graphs, "divided into smaller computational blocks that are compiled into
// C code, resulting in a DAG of tasks, partially ordered by their
// dependencies".
//
// An SDF graph is a set of actors connected by FIFO channels; each firing
// of an actor consumes a fixed number of tokens from every input channel
// and produces a fixed number on every output channel. The package
// provides:
//
//   - consistency analysis: solving the balance equations for the
//     repetition vector (how many times each actor fires per graph
//     iteration); inconsistent graphs (no non-trivial solution) are
//     rejected;
//   - deadlock analysis: verifying that initial tokens allow one full
//     iteration to fire;
//   - single-rate expansion: unrolling one iteration into a task DAG
//     (one task per firing, dependency edges derived from token flow),
//     the form consumed by the mapper and the interference analysis.
//
// Token counts translate to communication volumes: an edge carrying k
// tokens of size s words contributes k·s written words, matching the
// write counts on the paper's DAG edges.
package dataflow

import (
	"fmt"

	"github.com/mia-rt/mia/internal/mapper"
	"github.com/mia-rt/mia/internal/model"
)

// Actor is one computational block of the SDF graph.
type Actor struct {
	Name string
	// WCET is the worst-case execution time of one firing, in cycles.
	WCET model.Cycles
	// Local is the number of private memory accesses of one firing.
	Local model.Accesses
}

// Channel is a FIFO between two actors. Each firing of From produces
// Produce tokens; each firing of To consumes Consume tokens; Initial
// tokens are present before the first firing (delays). TokenWords is the
// size of one token in memory words — the unit of communication volume.
type Channel struct {
	From, To   int // actor indices
	Produce    int
	Consume    int
	Initial    int
	TokenWords model.Accesses
}

// Graph is a synchronous dataflow graph.
type Graph struct {
	Actors   []Actor
	Channels []Channel
}

// AddActor appends an actor and returns its index.
func (g *Graph) AddActor(a Actor) int {
	g.Actors = append(g.Actors, a)
	return len(g.Actors) - 1
}

// AddChannel appends a channel.
func (g *Graph) AddChannel(c Channel) {
	g.Channels = append(g.Channels, c)
}

// validate checks structural sanity.
func (g *Graph) validate() error {
	n := len(g.Actors)
	if n == 0 {
		return fmt.Errorf("dataflow: empty graph")
	}
	for i, a := range g.Actors {
		if a.WCET < 0 || a.Local < 0 {
			return fmt.Errorf("dataflow: actor %q has negative cost", a.Name)
		}
		if a.Name == "" {
			g.Actors[i].Name = fmt.Sprintf("actor%d", i)
		}
	}
	for _, c := range g.Channels {
		switch {
		case c.From < 0 || c.From >= n || c.To < 0 || c.To >= n:
			return fmt.Errorf("dataflow: channel %d→%d out of range", c.From, c.To)
		case c.Produce < 1 || c.Consume < 1:
			return fmt.Errorf("dataflow: channel %d→%d has non-positive rates %d/%d", c.From, c.To, c.Produce, c.Consume)
		case c.Initial < 0:
			return fmt.Errorf("dataflow: channel %d→%d has negative initial tokens", c.From, c.To)
		case c.TokenWords < 0:
			return fmt.Errorf("dataflow: channel %d→%d has negative token size", c.From, c.To)
		}
	}
	return nil
}

// Repetitions solves the balance equations q[from]·produce = q[to]·consume
// for the smallest positive integer repetition vector. It returns an error
// if the graph is inconsistent (rates admit only the zero solution).
func (g *Graph) Repetitions() ([]int, error) {
	if err := g.validate(); err != nil {
		return nil, err
	}
	n := len(g.Actors)
	// Rational propagation: assign q[0] of each weakly-connected component
	// 1/1 and walk channels as constraints; then scale to integers.
	num := make([]int64, n) // q[i] = num[i]/den[i]
	den := make([]int64, n)
	visited := make([]bool, n)
	adj := make([][]Channel, n)
	for _, c := range g.Channels {
		adj[c.From] = append(adj[c.From], c)
		// Reverse view for traversal.
		adj[c.To] = append(adj[c.To], Channel{
			From: c.To, To: c.From, Produce: c.Consume, Consume: c.Produce,
		})
	}
	for start := 0; start < n; start++ {
		if visited[start] {
			continue
		}
		num[start], den[start] = 1, 1
		visited[start] = true
		queue := []int{start}
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			for _, c := range adj[u] {
				// q[u]·produce = q[to]·consume → q[to] = q[u]·produce/consume
				wantNum := num[u] * int64(c.Produce)
				wantDen := den[u] * int64(c.Consume)
				f := gcd(wantNum, wantDen)
				wantNum, wantDen = wantNum/f, wantDen/f
				if !visited[c.To] {
					num[c.To], den[c.To] = wantNum, wantDen
					visited[c.To] = true
					queue = append(queue, c.To)
				} else if num[c.To]*wantDen != wantNum*den[c.To] {
					return nil, fmt.Errorf("dataflow: inconsistent rates around actor %q", g.Actors[c.To].Name)
				}
			}
		}
	}
	// Scale to the least common multiple of denominators.
	var l int64 = 1
	for i := 0; i < n; i++ {
		l = lcm(l, den[i])
	}
	reps := make([]int, n)
	var common int64
	for i := 0; i < n; i++ {
		v := num[i] * (l / den[i])
		if v <= 0 {
			return nil, fmt.Errorf("dataflow: actor %q has non-positive repetition", g.Actors[i].Name)
		}
		common = gcd(common, v)
		reps[i] = int(v)
	}
	if common > 1 {
		for i := range reps {
			reps[i] = int(int64(reps[i]) / common)
		}
	}
	return reps, nil
}

// Expand unrolls one iteration of the SDF graph into an unmapped task DAG
// (a mapper.Problem): firing j of actor a becomes task "a#j"; token flow
// induces dependency edges between producing and consuming firings, with
// communication volume = tokens transferred × token size. Initial tokens
// satisfy consumptions without creating intra-iteration dependencies (they
// come from the previous iteration). An error is returned if the graph is
// inconsistent or deadlocks (some firing can never be enabled).
func (g *Graph) Expand(cores, banks int) (*mapper.Problem, error) {
	reps, err := g.Repetitions()
	if err != nil {
		return nil, err
	}
	p := &mapper.Problem{Cores: cores, Banks: banks}
	// Task index of firing j of actor a.
	firstTask := make([]int, len(g.Actors))
	for a, r := range reps {
		firstTask[a] = len(p.Specs)
		for j := 0; j < r; j++ {
			name := g.Actors[a].Name
			if r > 1 {
				name = fmt.Sprintf("%s#%d", name, j)
			}
			p.Specs = append(p.Specs, mapper.Spec{
				Name:  name,
				WCET:  g.Actors[a].WCET,
				Local: g.Actors[a].Local,
			})
		}
	}
	// Token matching per channel: the k-th token consumed in this
	// iteration is either an initial token (k < Initial: no edge) or the
	// (k − Initial)-th token produced this iteration.
	type edgeKey struct{ from, to int }
	volume := map[edgeKey]model.Accesses{}
	for _, c := range g.Channels {
		produced := reps[c.From] * c.Produce
		consumed := reps[c.To] * c.Consume
		if produced != consumed {
			return nil, fmt.Errorf("dataflow: internal rate mismatch on %d→%d", c.From, c.To)
		}
		for k := 0; k < consumed; k++ {
			consumerFiring := k / c.Consume
			producedIdx := k - c.Initial
			if producedIdx < 0 {
				continue // satisfied by an initial token
			}
			if producedIdx >= produced {
				// Consumption beyond this iteration's production: the
				// channel borrows from the next iteration — a deadlock
				// within one iteration.
				return nil, fmt.Errorf("dataflow: channel %q→%q deadlocks within an iteration",
					g.Actors[c.From].Name, g.Actors[c.To].Name)
			}
			producerFiring := producedIdx / c.Produce
			key := edgeKey{
				from: firstTask[c.From] + producerFiring,
				to:   firstTask[c.To] + consumerFiring,
			}
			volume[key] += c.TokenWords
		}
	}
	for key, words := range volume {
		p.Edges = append(p.Edges, mapper.Edge{From: key.from, To: key.to, Words: words})
	}
	sortEdges(p.Edges)
	// A cyclic expansion (insufficient initial tokens on a loop) is a
	// deadlock: detect via the mapper's layering.
	if _, err := mapper.Map(p, mapper.RoundRobinLayers{}); err != nil {
		return nil, fmt.Errorf("dataflow: expansion deadlocks: %w", err)
	}
	return p, nil
}

// Compile is the full front end: expand one iteration and map it onto the
// platform with the given strategy, yielding the analysis-ready graph.
func (g *Graph) Compile(cores, banks int, s mapper.Strategy) (*model.Graph, error) {
	p, err := g.Expand(cores, banks)
	if err != nil {
		return nil, err
	}
	return mapper.Map(p, s)
}

func sortEdges(edges []mapper.Edge) {
	for i := 1; i < len(edges); i++ {
		for j := i; j > 0; j-- {
			a, b := edges[j-1], edges[j]
			if a.From < b.From || (a.From == b.From && a.To <= b.To) {
				break
			}
			edges[j-1], edges[j] = b, a
		}
	}
}

func gcd(a, b int64) int64 {
	if a < 0 {
		a = -a
	}
	if b < 0 {
		b = -b
	}
	for b != 0 {
		a, b = b, a%b
	}
	if a == 0 {
		return 1
	}
	return a
}

func lcm(a, b int64) int64 { return a / gcd(a, b) * b }
