package dataflow

import (
	"bytes"
	"strings"
	"testing"

	"github.com/mia-rt/mia/internal/mapper"
	"github.com/mia-rt/mia/internal/sched"
	"github.com/mia-rt/mia/internal/sched/incremental"
)

// producerConsumer: A produces 2 tokens per firing, B consumes 3 → q = (3, 2).
func producerConsumer() *Graph {
	g := &Graph{}
	a := g.AddActor(Actor{Name: "A", WCET: 10, Local: 4})
	b := g.AddActor(Actor{Name: "B", WCET: 20, Local: 6})
	g.AddChannel(Channel{From: a, To: b, Produce: 2, Consume: 3, TokenWords: 5})
	return g
}

func TestRepetitionsRational(t *testing.T) {
	reps, err := producerConsumer().Repetitions()
	if err != nil {
		t.Fatalf("Repetitions: %v", err)
	}
	if reps[0] != 3 || reps[1] != 2 {
		t.Fatalf("reps = %v, want [3 2]", reps)
	}
}

func TestRepetitionsHomogeneous(t *testing.T) {
	// Single-rate graphs have the all-ones vector.
	g := &Graph{}
	a := g.AddActor(Actor{Name: "A", WCET: 1})
	b := g.AddActor(Actor{Name: "B", WCET: 1})
	c := g.AddActor(Actor{Name: "C", WCET: 1})
	g.AddChannel(Channel{From: a, To: b, Produce: 1, Consume: 1})
	g.AddChannel(Channel{From: b, To: c, Produce: 1, Consume: 1})
	reps, err := g.Repetitions()
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range reps {
		if r != 1 {
			t.Errorf("reps[%d] = %d, want 1", i, r)
		}
	}
}

func TestRepetitionsInconsistent(t *testing.T) {
	// A→B with 1:1 and a second channel with 2:1 cannot balance.
	g := &Graph{}
	a := g.AddActor(Actor{Name: "A", WCET: 1})
	b := g.AddActor(Actor{Name: "B", WCET: 1})
	g.AddChannel(Channel{From: a, To: b, Produce: 1, Consume: 1})
	g.AddChannel(Channel{From: a, To: b, Produce: 2, Consume: 1})
	if _, err := g.Repetitions(); err == nil || !strings.Contains(err.Error(), "inconsistent") {
		t.Fatalf("err = %v, want inconsistency", err)
	}
}

func TestRepetitionsSmallestVector(t *testing.T) {
	// Rates 4:2 reduce to q = (1, 2), not (2, 4).
	g := &Graph{}
	a := g.AddActor(Actor{Name: "A", WCET: 1})
	b := g.AddActor(Actor{Name: "B", WCET: 1})
	g.AddChannel(Channel{From: a, To: b, Produce: 4, Consume: 2})
	reps, err := g.Repetitions()
	if err != nil {
		t.Fatal(err)
	}
	if reps[0] != 1 || reps[1] != 2 {
		t.Fatalf("reps = %v, want [1 2]", reps)
	}
}

func TestRepetitionsDisconnected(t *testing.T) {
	g := &Graph{}
	g.AddActor(Actor{Name: "A", WCET: 1})
	g.AddActor(Actor{Name: "B", WCET: 1})
	reps, err := g.Repetitions()
	if err != nil {
		t.Fatal(err)
	}
	if reps[0] != 1 || reps[1] != 1 {
		t.Fatalf("reps = %v", reps)
	}
}

func TestExpandProducerConsumer(t *testing.T) {
	p, err := producerConsumer().Expand(2, 2)
	if err != nil {
		t.Fatalf("Expand: %v", err)
	}
	// 3 firings of A + 2 of B.
	if len(p.Specs) != 5 {
		t.Fatalf("%d tasks, want 5", len(p.Specs))
	}
	names := map[string]bool{}
	for _, s := range p.Specs {
		names[s.Name] = true
	}
	for _, want := range []string{"A#0", "A#1", "A#2", "B#0", "B#1"} {
		if !names[want] {
			t.Errorf("missing firing %s", want)
		}
	}
	// Token flow: B#0 consumes tokens 0..2 (produced by A#0 A#0 A#1);
	// B#1 consumes 3..5 (A#1 A#2 A#2). Edges: A0→B0 (2 tokens), A1→B0 (1),
	// A1→B1 (1), A2→B1 (2); volumes ×5 words.
	type e struct{ from, to int }
	vol := map[e]int64{}
	for _, edge := range p.Edges {
		vol[e{edge.From, edge.To}] = int64(edge.Words)
	}
	want := map[e]int64{
		{0, 3}: 10, {1, 3}: 5, {1, 4}: 5, {2, 4}: 10,
	}
	if len(vol) != len(want) {
		t.Fatalf("edges = %v, want %v", vol, want)
	}
	for k, v := range want {
		if vol[k] != v {
			t.Errorf("edge %v volume %d, want %d", k, vol[k], v)
		}
	}
}

func TestExpandInitialTokensCutDependencies(t *testing.T) {
	// A 1:1 self-loop cycle A→B→A with one initial token on B→A: the
	// iteration starts with A (fed by the delay), so expansion is acyclic
	// with the B→A dependency absorbed by the initial token.
	g := &Graph{}
	a := g.AddActor(Actor{Name: "A", WCET: 1})
	b := g.AddActor(Actor{Name: "B", WCET: 1})
	g.AddChannel(Channel{From: a, To: b, Produce: 1, Consume: 1, TokenWords: 1})
	g.AddChannel(Channel{From: b, To: a, Produce: 1, Consume: 1, Initial: 1, TokenWords: 1})
	p, err := g.Expand(2, 2)
	if err != nil {
		t.Fatalf("Expand: %v", err)
	}
	if len(p.Edges) != 1 || p.Edges[0].From != 0 || p.Edges[0].To != 1 {
		t.Fatalf("edges = %v, want single A→B", p.Edges)
	}
}

func TestExpandDeadlock(t *testing.T) {
	// The same cycle without initial tokens deadlocks.
	g := &Graph{}
	a := g.AddActor(Actor{Name: "A", WCET: 1})
	b := g.AddActor(Actor{Name: "B", WCET: 1})
	g.AddChannel(Channel{From: a, To: b, Produce: 1, Consume: 1})
	g.AddChannel(Channel{From: b, To: a, Produce: 1, Consume: 1})
	if _, err := g.Expand(1, 1); err == nil || !strings.Contains(err.Error(), "deadlock") {
		t.Fatalf("err = %v, want deadlock", err)
	}
}

func TestCompileEndToEnd(t *testing.T) {
	// Multirate pipeline through the whole stack: SDF → expansion →
	// mapping → interference analysis.
	g := &Graph{}
	src := g.AddActor(Actor{Name: "src", WCET: 50, Local: 20})
	fir := g.AddActor(Actor{Name: "fir", WCET: 80, Local: 30})
	dec := g.AddActor(Actor{Name: "decimate", WCET: 60, Local: 25})
	sink := g.AddActor(Actor{Name: "sink", WCET: 40, Local: 15})
	g.AddChannel(Channel{From: src, To: fir, Produce: 1, Consume: 1, TokenWords: 4})
	g.AddChannel(Channel{From: fir, To: dec, Produce: 2, Consume: 4, TokenWords: 4})
	g.AddChannel(Channel{From: dec, To: sink, Produce: 1, Consume: 1, TokenWords: 8})

	mg, err := g.Compile(4, 4, mapper.ListScheduling{})
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	// q = (2, 2, 1, 1): 6 tasks.
	if mg.NumTasks() != 6 {
		t.Fatalf("%d tasks, want 6", mg.NumTasks())
	}
	res, err := incremental.Schedule(mg, sched.Options{})
	if err != nil {
		t.Fatalf("Schedule: %v", err)
	}
	if err := sched.Check(mg, sched.Options{}, res); err != nil {
		t.Fatalf("Check: %v", err)
	}
}

func TestValidation(t *testing.T) {
	cases := []struct {
		name string
		g    func() *Graph
	}{
		{"empty", func() *Graph { return &Graph{} }},
		{"bad channel range", func() *Graph {
			g := &Graph{}
			g.AddActor(Actor{WCET: 1})
			g.AddChannel(Channel{From: 0, To: 5, Produce: 1, Consume: 1})
			return g
		}},
		{"zero rate", func() *Graph {
			g := &Graph{}
			a := g.AddActor(Actor{WCET: 1})
			b := g.AddActor(Actor{WCET: 1})
			g.AddChannel(Channel{From: a, To: b, Produce: 0, Consume: 1})
			return g
		}},
		{"negative initial", func() *Graph {
			g := &Graph{}
			a := g.AddActor(Actor{WCET: 1})
			b := g.AddActor(Actor{WCET: 1})
			g.AddChannel(Channel{From: a, To: b, Produce: 1, Consume: 1, Initial: -1})
			return g
		}},
		{"negative cost", func() *Graph {
			g := &Graph{}
			g.AddActor(Actor{WCET: -1})
			return g
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := tc.g().Repetitions(); err == nil {
				t.Fatal("invalid graph accepted")
			}
		})
	}
}

func TestDefaultActorNames(t *testing.T) {
	g := &Graph{}
	g.AddActor(Actor{WCET: 1})
	if _, err := g.Repetitions(); err != nil {
		t.Fatal(err)
	}
	if g.Actors[0].Name != "actor0" {
		t.Errorf("name = %q", g.Actors[0].Name)
	}
}

func TestJSONRoundTrip(t *testing.T) {
	g := producerConsumer()
	var buf bytes.Buffer
	if err := g.WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	g2, err := ReadJSON(&buf)
	if err != nil {
		t.Fatalf("ReadJSON: %v", err)
	}
	r1, err := g.Repetitions()
	if err != nil {
		t.Fatal(err)
	}
	r2, err := g2.Repetitions()
	if err != nil {
		t.Fatal(err)
	}
	if len(r1) != len(r2) {
		t.Fatal("round trip lost actors")
	}
	for i := range r1 {
		if r1[i] != r2[i] {
			t.Fatalf("repetitions differ: %v vs %v", r1, r2)
		}
	}
	if g2.Channels[0].TokenWords != 5 {
		t.Errorf("token size lost: %+v", g2.Channels[0])
	}
}

func TestReadJSONDefaultsRates(t *testing.T) {
	src := `{"actors":[{"name":"a","wcet":1},{"name":"b","wcet":1}],
		"channels":[{"from":0,"to":1}]}`
	g, err := ReadJSON(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if g.Channels[0].Produce != 1 || g.Channels[0].Consume != 1 {
		t.Fatalf("rates not defaulted: %+v", g.Channels[0])
	}
}

func TestReadJSONRejectsUnknownFields(t *testing.T) {
	if _, err := ReadJSON(strings.NewReader(`{"bogus": 1}`)); err == nil {
		t.Fatal("unknown field accepted")
	}
}
