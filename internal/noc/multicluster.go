package noc

import (
	"context"
	"fmt"

	"github.com/mia-rt/mia/internal/engine"
	"github.com/mia-rt/mia/internal/model"
	"github.com/mia-rt/mia/internal/sched"
	_ "github.com/mia-rt/mia/internal/sched/incremental" // registers the "incremental" engine backend
)

// eng analyzes each cluster: the paper's O(n²) incremental scheduler.
var eng = engine.MustNew(engine.Incremental)

// InterEdge is a cross-cluster dependency: the consumer task (in its
// cluster) cannot start before the producer task's output has traversed
// the NoC.
type InterEdge struct {
	FromCluster ClusterID
	FromTask    model.TaskID
	ToCluster   ClusterID
	ToTask      model.TaskID
	// Flow carries the edge's payload; From/To are filled from the
	// clusters if left zero.
	Flow Flow
}

// System is a multi-cluster application: one task graph per cluster (each
// analyzed with the paper's single-cluster algorithm) plus NoC-borne
// dependencies between clusters.
type System struct {
	Topology *Topology
	// Graphs maps cluster → its task graph. Missing clusters are idle.
	Graphs map[ClusterID]*model.Graph
	Edges  []InterEdge
}

// Result is the outcome of the multi-cluster analysis.
type Result struct {
	// Schedules holds the per-cluster schedules at the global fixed point.
	Schedules map[ClusterID]*sched.Result
	// EdgeLatency holds the NoC worst-case traversal bound per InterEdge
	// (indexed like System.Edges).
	EdgeLatency []model.Cycles
	// Makespan is the latest finish across all clusters.
	Makespan model.Cycles
	// Rounds counts global fixed-point rounds.
	Rounds int
}

// Analyze composes per-cluster interference analyses with NoC latency
// bounds into a global time-triggered schedule:
//
//  1. each cluster is scheduled independently (the O(n²) algorithm);
//  2. every inter-cluster edge imposes, on its consumer, a minimal release
//     of producer-finish + worst-case NoC traversal;
//  3. repeat until no minimal release changes — release dates only grow,
//     so the iteration reaches a fixed point in at most |Edges| rounds
//     unless the constraints are circular, which is reported.
//
// The per-cluster graphs are cloned; inputs are never mutated. Each round
// raises minimal release dates — a quantity compiled into an engine image —
// so every (cluster, round) analysis compiles and analyzes through the
// engine façade. Canceling ctx aborts the analysis between and inside
// cluster runs.
func (s *System) Analyze(ctx context.Context, opts sched.Options) (*Result, error) {
	if s.Topology == nil {
		return nil, fmt.Errorf("noc: system without topology")
	}
	if err := s.Topology.Validate(); err != nil {
		return nil, err
	}
	graphs := make(map[ClusterID]*model.Graph, len(s.Graphs))
	for c, g := range s.Graphs {
		if c < 0 || int(c) >= s.Topology.Clusters() {
			return nil, fmt.Errorf("noc: cluster %d outside the topology", c)
		}
		graphs[c] = g.Clone()
	}

	// NoC flow set and per-edge latency bounds (release-date independent:
	// regulation parameters, not schedules, determine them).
	flows := make([]Flow, len(s.Edges))
	for i, e := range s.Edges {
		f := e.Flow
		f.From, f.To = e.FromCluster, e.ToCluster
		if f.Name == "" {
			f.Name = fmt.Sprintf("edge%d", i)
		}
		flows[i] = f
	}
	res := &Result{Schedules: make(map[ClusterID]*sched.Result), EdgeLatency: make([]model.Cycles, len(s.Edges))}
	for i := range s.Edges {
		lat, err := s.Topology.Latency(flows[i], flows)
		if err != nil {
			return nil, err
		}
		res.EdgeLatency[i] = lat
	}
	for i, e := range s.Edges {
		g, ok := graphs[e.FromCluster]
		if !ok || int(e.FromTask) >= g.NumTasks() {
			return nil, fmt.Errorf("noc: edge %d references unknown producer", i)
		}
		g, ok = graphs[e.ToCluster]
		if !ok || int(e.ToTask) >= g.NumTasks() {
			return nil, fmt.Errorf("noc: edge %d references unknown consumer", i)
		}
		if e.FromCluster == e.ToCluster {
			return nil, fmt.Errorf("noc: edge %d is intra-cluster; model it as a graph edge", i)
		}
	}

	maxRounds := len(s.Edges) + 2
	for round := 1; ; round++ {
		if round > maxRounds {
			return nil, fmt.Errorf("noc: inter-cluster constraints did not converge in %d rounds (circular dependency between clusters?)", maxRounds)
		}
		res.Rounds = round
		for c, g := range graphs {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			img, err := engine.Compile(g, opts)
			if err != nil {
				return nil, fmt.Errorf("noc: cluster %d: %w", c, err)
			}
			r, err := eng.Analyze(ctx, img)
			if err != nil {
				return nil, fmt.Errorf("noc: cluster %d: %w", c, err)
			}
			res.Schedules[c] = r
		}
		changed := false
		for i, e := range s.Edges {
			producerFinish := res.Schedules[e.FromCluster].Finish(e.FromTask)
			arrival := producerFinish + res.EdgeLatency[i]
			consumer := graphs[e.ToCluster].Task(e.ToTask)
			if consumer.MinRelease < arrival {
				consumer.MinRelease = arrival
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	for _, r := range res.Schedules {
		if r.Makespan > res.Makespan {
			res.Makespan = r.Makespan
		}
	}
	return res, nil
}
