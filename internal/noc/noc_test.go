package noc

import (
	"context"
	"strings"
	"testing"

	"github.com/mia-rt/mia/internal/model"
	"github.com/mia-rt/mia/internal/sched"
)

func TestRouteSameCluster(t *testing.T) {
	topo := MPPA256()
	r, err := topo.Route(5, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(r) != 0 {
		t.Fatalf("self route = %v", r)
	}
}

func TestRouteXThenY(t *testing.T) {
	topo := MPPA256() // 4×4: cluster = y*4 + x
	// (0,0) → (2,1): two +x hops then one +y hop.
	r, err := topo.Route(0, 6)
	if err != nil {
		t.Fatal(err)
	}
	want := []Link{{From: 0, Dir: 0}, {From: 1, Dir: 0}, {From: 2, Dir: 2}}
	if len(r) != len(want) {
		t.Fatalf("route = %v, want %v", r, want)
	}
	for i := range want {
		if r[i] != want[i] {
			t.Fatalf("route[%d] = %v, want %v", i, r[i], want[i])
		}
	}
}

func TestRouteWrapAround(t *testing.T) {
	topo := MPPA256()
	// (0,0) → (3,0): the torus makes −x (1 hop) shorter than +x (3 hops).
	r, err := topo.Route(0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(r) != 1 || r[0].Dir != 1 {
		t.Fatalf("route = %v, want single −x wrap hop", r)
	}
}

func TestRouteErrors(t *testing.T) {
	topo := MPPA256()
	if _, err := topo.Route(-1, 0); err == nil {
		t.Error("negative source accepted")
	}
	if _, err := topo.Route(0, 99); err == nil {
		t.Error("out-of-range destination accepted")
	}
	bad := &Topology{Width: 0, Height: 1, LinkCapacity: 1}
	if _, err := bad.Route(0, 0); err == nil {
		t.Error("degenerate topology accepted")
	}
}

func TestLatencyUncontended(t *testing.T) {
	topo := MPPA256()
	f := Flow{From: 0, To: 1, Burst: 4, Rate: 0.25, PacketFlits: 16}
	lat, err := topo.Latency(f, []Flow{f})
	if err != nil {
		t.Fatal(err)
	}
	// 1 hop: 16 flits serialization + 3 router cycles (+1 rounding).
	if lat != 16+3+1 {
		t.Fatalf("latency = %d, want 20", lat)
	}
}

func TestLatencySameClusterIsZero(t *testing.T) {
	topo := MPPA256()
	f := Flow{From: 2, To: 2, Burst: 1, Rate: 0.1, PacketFlits: 64}
	lat, err := topo.Latency(f, []Flow{f})
	if err != nil || lat != 0 {
		t.Fatalf("local latency = %d err %v", lat, err)
	}
}

func TestLatencyContention(t *testing.T) {
	topo := MPPA256()
	a := Flow{Name: "a", From: 0, To: 1, Burst: 8, Rate: 0.25, PacketFlits: 16}
	b := Flow{Name: "b", From: 0, To: 1, Burst: 8, Rate: 0.25, PacketFlits: 16}
	alone, err := topo.Latency(a, []Flow{a})
	if err != nil {
		t.Fatal(err)
	}
	contended, err := topo.Latency(a, []Flow{a, b})
	if err != nil {
		t.Fatal(err)
	}
	// Competitor burst 8 at residual capacity 0.75: + 8/0.75 ≈ 10.7 cycles.
	if contended <= alone {
		t.Fatalf("contended %d ≤ alone %d", contended, alone)
	}
	if contended-alone > 12 {
		t.Fatalf("contention penalty %d, expected ≈11", contended-alone)
	}
}

func TestLatencyDuplicateFlowsBothCount(t *testing.T) {
	topo := MPPA256()
	f := Flow{From: 0, To: 1, Burst: 8, Rate: 0.25, PacketFlits: 16}
	// Two identical flows: analyzing one must count the other.
	two, err := topo.Latency(f, []Flow{f, f})
	if err != nil {
		t.Fatal(err)
	}
	one, err := topo.Latency(f, []Flow{f})
	if err != nil {
		t.Fatal(err)
	}
	if two <= one {
		t.Fatalf("duplicate competitor ignored: %d ≤ %d", two, one)
	}
}

func TestLatencyInstability(t *testing.T) {
	topo := MPPA256()
	a := Flow{Name: "a", From: 0, To: 1, Burst: 1, Rate: 0.6, PacketFlits: 4}
	b := Flow{Name: "b", From: 0, To: 1, Burst: 1, Rate: 0.6, PacketFlits: 4}
	if _, err := topo.Latency(a, []Flow{a, b}); err == nil || !strings.Contains(err.Error(), "unstable") {
		t.Fatalf("err = %v, want instability", err)
	}
}

func TestLatencyMalformedFlow(t *testing.T) {
	topo := MPPA256()
	bad := []Flow{
		{From: 0, To: 1, Burst: -1, Rate: 0.1},
		{From: 0, To: 1, Burst: 1, Rate: 2}, // rate beyond capacity
		{From: 0, To: 1, Burst: 1, Rate: 0.1, PacketFlits: -4},
	}
	for i, f := range bad {
		if _, err := topo.Latency(f, []Flow{f}); err == nil {
			t.Errorf("case %d: malformed flow accepted", i)
		}
	}
}

// twoClusterSystem: producer graph in cluster 0 feeding a consumer graph in
// cluster 1 over the NoC.
func twoClusterSystem(t testing.TB) *System {
	t.Helper()
	b0 := model.NewBuilder(2, 2)
	prod := b0.AddTask(model.TaskSpec{Name: "prod", WCET: 100, Core: 0, Local: 20})
	b0.AddTask(model.TaskSpec{Name: "other", WCET: 50, Core: 1, Local: 10})
	g0 := b0.MustBuild()

	b1 := model.NewBuilder(2, 2)
	cons := b1.AddTask(model.TaskSpec{Name: "cons", WCET: 80, Core: 0, Local: 15})
	b1.AddTask(model.TaskSpec{Name: "side", WCET: 60, Core: 1, Local: 10})
	g1 := b1.MustBuild()

	return &System{
		Topology: MPPA256(),
		Graphs:   map[ClusterID]*model.Graph{0: g0, 1: g1},
		Edges: []InterEdge{{
			FromCluster: 0, FromTask: prod,
			ToCluster: 1, ToTask: cons,
			Flow: Flow{Burst: 8, Rate: 0.25, PacketFlits: 32},
		}},
	}
}

func TestMultiClusterAnalysis(t *testing.T) {
	s := twoClusterSystem(t)
	res, err := s.Analyze(context.Background(), sched.Options{})
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	if len(res.Schedules) != 2 {
		t.Fatalf("schedules = %d", len(res.Schedules))
	}
	prodFinish := res.Schedules[0].Finish(0)
	consRelease := res.Schedules[1].Release[0]
	if consRelease < prodFinish+res.EdgeLatency[0] {
		t.Fatalf("consumer released at %d before producer finish %d + NoC %d",
			consRelease, prodFinish, res.EdgeLatency[0])
	}
	if res.EdgeLatency[0] <= 0 {
		t.Fatal("NoC latency not accounted")
	}
	if res.Makespan < res.Schedules[1].Makespan {
		t.Fatal("makespan not global")
	}
	if res.Rounds < 2 {
		t.Fatalf("rounds = %d, want ≥ 2 (must re-verify after constraint propagation)", res.Rounds)
	}
}

func TestMultiClusterInputUntouched(t *testing.T) {
	s := twoClusterSystem(t)
	before := s.Graphs[1].Task(0).MinRelease
	if _, err := s.Analyze(context.Background(), sched.Options{}); err != nil {
		t.Fatal(err)
	}
	if s.Graphs[1].Task(0).MinRelease != before {
		t.Fatal("Analyze mutated the input graph")
	}
}

func TestMultiClusterChainPropagates(t *testing.T) {
	// Three clusters in a chain: constraints must propagate transitively.
	mk := func(name string) *model.Graph {
		b := model.NewBuilder(1, 1)
		b.AddTask(model.TaskSpec{Name: name, WCET: 50, Local: 10})
		return b.MustBuild()
	}
	s := &System{
		Topology: MPPA256(),
		Graphs:   map[ClusterID]*model.Graph{0: mk("a"), 1: mk("b"), 2: mk("c")},
		Edges: []InterEdge{
			{FromCluster: 0, FromTask: 0, ToCluster: 1, ToTask: 0, Flow: Flow{Burst: 2, Rate: 0.1, PacketFlits: 8}},
			{FromCluster: 1, FromTask: 0, ToCluster: 2, ToTask: 0, Flow: Flow{Burst: 2, Rate: 0.1, PacketFlits: 8}},
		},
	}
	res, err := s.Analyze(context.Background(), sched.Options{})
	if err != nil {
		t.Fatal(err)
	}
	relB := res.Schedules[1].Release[0]
	relC := res.Schedules[2].Release[0]
	if relB < 50+res.EdgeLatency[0] {
		t.Fatalf("cluster 1 release %d too early", relB)
	}
	if relC < relB+50+res.EdgeLatency[1] {
		t.Fatalf("cluster 2 release %d too early (cluster 1 finishes %d)", relC, relB+50)
	}
}

func TestMultiClusterErrors(t *testing.T) {
	s := twoClusterSystem(t)
	s.Edges[0].ToTask = 99
	if _, err := s.Analyze(context.Background(), sched.Options{}); err == nil {
		t.Error("unknown consumer accepted")
	}
	s = twoClusterSystem(t)
	s.Edges[0].ToCluster = 0
	s.Edges[0].ToTask = 1
	if _, err := s.Analyze(context.Background(), sched.Options{}); err == nil {
		t.Error("intra-cluster edge accepted")
	}
	s = twoClusterSystem(t)
	s.Topology = nil
	if _, err := s.Analyze(context.Background(), sched.Options{}); err == nil {
		t.Error("nil topology accepted")
	}
	s = twoClusterSystem(t)
	s.Graphs[99] = s.Graphs[0]
	if _, err := s.Analyze(context.Background(), sched.Options{}); err == nil {
		t.Error("out-of-topology cluster accepted")
	}
}

func TestMultiClusterCircularDiverges(t *testing.T) {
	mk := func(name string) *model.Graph {
		b := model.NewBuilder(1, 1)
		b.AddTask(model.TaskSpec{Name: name, WCET: 50, Local: 10})
		return b.MustBuild()
	}
	s := &System{
		Topology: MPPA256(),
		Graphs:   map[ClusterID]*model.Graph{0: mk("a"), 1: mk("b")},
		Edges: []InterEdge{
			{FromCluster: 0, FromTask: 0, ToCluster: 1, ToTask: 0, Flow: Flow{Burst: 2, Rate: 0.1, PacketFlits: 8}},
			{FromCluster: 1, FromTask: 0, ToCluster: 0, ToTask: 0, Flow: Flow{Burst: 2, Rate: 0.1, PacketFlits: 8}},
		},
	}
	if _, err := s.Analyze(context.Background(), sched.Options{}); err == nil || !strings.Contains(err.Error(), "converge") {
		t.Fatalf("err = %v, want divergence report", err)
	}
}
