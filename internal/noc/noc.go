// Package noc models the network-on-chip connecting the compute clusters of
// the Kalray MPPA-256 (reference [3] of the paper: a 2D torus with
// deterministic X-then-Y routing and flow regulation at the sources) and
// bounds worst-case traversal times with the standard (σ, ρ)
// network-calculus argument.
//
// The DATE 2020 paper analyzes one compute cluster; real deployments span
// several clusters, with the NoC carrying inter-cluster channels. This
// package provides the missing tier: per-flow worst-case traversal latency
// bounds, and a multi-cluster fixed-point analysis that composes per-cluster
// schedules (computed by the paper's O(n²) algorithm) with NoC delays on the
// cross-cluster edges.
//
// Latency model. Each flow f is regulated at its source by a burst σ_f
// (flits) and a rate ρ_f (flits/cycle ≤ link capacity). On every traversed
// link, served round-robin against the competing flows S, the queuing delay
// is bounded by the classic leaky-bucket result
//
//	d_link ≤ (Σ_{j∈S} σ_j) / (C − Σ_{j∈S} ρ_j)
//
// provided the link is stable (Σ_{j∈S} ρ_j + ρ_f ≤ C). The end-to-end bound
// adds per-router forwarding latency and the serialization of the packet
// itself: D = Σ_links d_link + hops·R + L_pkt/C.
package noc

import (
	"fmt"

	"github.com/mia-rt/mia/internal/model"
)

// ClusterID identifies a compute cluster (node of the torus).
type ClusterID int

// Topology is a W×H torus of clusters.
type Topology struct {
	// Width and Height of the torus (MPPA-256: 4×4).
	Width, Height int
	// LinkCapacity is the link bandwidth in flits/cycle (1 on the D-NoC).
	LinkCapacity float64
	// RouterLatency is the per-hop forwarding latency in cycles.
	RouterLatency model.Cycles
}

// MPPA256 returns the 4×4 torus of the MPPA-256 D-NoC with unit link
// capacity and a 3-cycle router traversal.
func MPPA256() *Topology {
	return &Topology{Width: 4, Height: 4, LinkCapacity: 1, RouterLatency: 3}
}

// Validate checks the topology.
func (t *Topology) Validate() error {
	switch {
	case t.Width < 1 || t.Height < 1:
		return fmt.Errorf("noc: %dx%d torus", t.Width, t.Height)
	case t.LinkCapacity <= 0:
		return fmt.Errorf("noc: link capacity %g", t.LinkCapacity)
	case t.RouterLatency < 0:
		return fmt.Errorf("noc: negative router latency")
	}
	return nil
}

// Clusters returns the number of clusters.
func (t *Topology) Clusters() int { return t.Width * t.Height }

// coord splits a ClusterID into torus coordinates.
func (t *Topology) coord(c ClusterID) (x, y int) {
	return int(c) % t.Width, int(c) / t.Width
}

// Link is a directed physical link between adjacent routers, identified by
// its source cluster and direction.
type Link struct {
	From ClusterID
	// Dir is 0:+x, 1:−x, 2:+y, 3:−y.
	Dir int
}

// Route returns the links traversed from src to dst under X-then-Y
// dimension-order routing with shortest wrap-around (ties broken toward
// positive direction). An empty route means src == dst (local delivery).
func (t *Topology) Route(src, dst ClusterID) ([]Link, error) {
	if err := t.Validate(); err != nil {
		return nil, err
	}
	n := ClusterID(t.Clusters())
	if src < 0 || src >= n || dst < 0 || dst >= n {
		return nil, fmt.Errorf("noc: route %d→%d outside %d-cluster torus", src, dst, n)
	}
	var route []Link
	x, y := t.coord(src)
	dx, dy := t.coord(dst)
	step := func(cur, target, size int) (dir, next int) {
		fwd := (target - cur + size) % size
		bwd := (cur - target + size) % size
		if fwd <= bwd {
			return 0, (cur + 1) % size
		}
		return 1, (cur - 1 + size) % size
	}
	for x != dx {
		dir, next := step(x, dx, t.Width)
		route = append(route, Link{From: ClusterID(y*t.Width + x), Dir: dir})
		x = next
	}
	for y != dy {
		dir, next := step(y, dy, t.Height)
		route = append(route, Link{From: ClusterID(y*t.Width + x), Dir: dir + 2})
		y = next
	}
	return route, nil
}

// Flow is a regulated traffic stream between two clusters.
type Flow struct {
	Name string
	From ClusterID
	To   ClusterID
	// Burst is the σ of the source regulator, in flits.
	Burst float64
	// Rate is the ρ of the source regulator, in flits/cycle.
	Rate float64
	// PacketFlits is the size of one packet (the unit whose worst-case
	// traversal the analysis bounds).
	PacketFlits int64
}

// Latency bounds the worst-case traversal of one packet of flow f, given
// all flows in the system (including f itself; competitors are the others
// sharing a link). It returns an error if any shared link is unstable
// (aggregate rate ≥ capacity) or a flow is malformed.
func (t *Topology) Latency(f Flow, all []Flow) (model.Cycles, error) {
	if f.Burst < 0 || f.Rate < 0 || f.Rate > t.LinkCapacity || f.PacketFlits < 0 {
		return 0, fmt.Errorf("noc: malformed flow %q", f.Name)
	}
	route, err := t.Route(f.From, f.To)
	if err != nil {
		return 0, err
	}
	if len(route) == 0 {
		return 0, nil // same cluster: local shared memory, no NoC
	}
	// Precompute each other flow's link set.
	type key = Link
	onLink := make(map[key][]Flow)
	skippedSelf := false // skip exactly one instance: duplicates are real competitors
	for _, g := range all {
		if !skippedSelf && g == f {
			skippedSelf = true
			continue
		}
		r, err := t.Route(g.From, g.To)
		if err != nil {
			return 0, err
		}
		for _, l := range r {
			onLink[l] = append(onLink[l], g)
		}
	}
	delay := float64(f.PacketFlits) / t.LinkCapacity
	for _, l := range route {
		var sigma, rho float64
		for _, g := range onLink[l] {
			sigma += g.Burst
			rho += g.Rate
		}
		if rho+f.Rate > t.LinkCapacity {
			return 0, fmt.Errorf("noc: link %v unstable (aggregate rate %.3g + %.3g > capacity %.3g)",
				l, rho, f.Rate, t.LinkCapacity)
		}
		if rho >= t.LinkCapacity {
			return 0, fmt.Errorf("noc: link %v saturated by competitors", l)
		}
		delay += sigma / (t.LinkCapacity - rho)
	}
	delay += float64(len(route)) * float64(t.RouterLatency)
	// Round up to whole cycles; the bound stays sound.
	return model.Cycles(delay) + 1, nil
}
