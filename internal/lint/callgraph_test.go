package lint

import (
	"fmt"
	"go/types"
	"path/filepath"
	"sort"
	"testing"
)

// loadCallGraphFixture loads testdata/callgraph once per test binary.
func loadCallGraphFixture(t *testing.T) (*CallGraph, []*Package) {
	t.Helper()
	dir, err := filepath.Abs("testdata/callgraph")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := Load(dir)
	if err != nil {
		t.Fatalf("loading callgraph fixture: %v", err)
	}
	return BuildCallGraph(pkgs), pkgs
}

// lookupFunc finds a package-level function or a method ("Type.Method") in
// the fixture packages.
func lookupFunc(t *testing.T, pkgs []*Package, pkgName, name string) *types.Func {
	t.Helper()
	for _, pkg := range pkgs {
		if pkg.Name != pkgName {
			continue
		}
		scope := pkg.Types.Scope()
		if tn, method, ok := splitMethod(name); ok {
			obj := scope.Lookup(tn)
			if obj == nil {
				continue
			}
			named, ok := obj.Type().(*types.Named)
			if !ok {
				continue
			}
			for i := 0; i < named.NumMethods(); i++ {
				if m := named.Method(i); m.Name() == method {
					return m
				}
			}
			continue
		}
		if fn, ok := scope.Lookup(name).(*types.Func); ok {
			return fn
		}
	}
	t.Fatalf("fixture function %s.%s not found", pkgName, name)
	return nil
}

func splitMethod(name string) (typeName, method string, ok bool) {
	for i := 0; i < len(name); i++ {
		if name[i] == '.' {
			return name[:i], name[i+1:], true
		}
	}
	return "", "", false
}

// callees renders a node's outgoing edges as "Kind:FullName" strings, sorted.
func callees(g *CallGraph, fn *types.Func) []string {
	node := g.Node(fn)
	if node == nil {
		return nil
	}
	var out []string
	for _, e := range node.Calls {
		kind := map[EdgeKind]string{EdgeStatic: "static", EdgeInterface: "iface", EdgeDynamic: "dyn"}[e.Kind]
		out = append(out, fmt.Sprintf("%s:%s", kind, e.Callee.FullName()))
	}
	sort.Strings(out)
	return out
}

func assertEdges(t *testing.T, g *CallGraph, fn *types.Func, want []string) {
	t.Helper()
	got := callees(g, fn)
	sort.Strings(want)
	if len(got) != len(want) {
		t.Fatalf("%s: edges = %v, want %v", fn.FullName(), got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("%s: edges = %v, want %v", fn.FullName(), got, want)
		}
	}
}

func TestCallGraphStaticAndCrossPackage(t *testing.T) {
	g, pkgs := loadCallGraphFixture(t)
	a := lookupFunc(t, pkgs, "cg", "A")
	assertEdges(t, g, a, []string{
		"static:example.com/cg.B",
		"static:example.com/cg/sub.Helper",
	})
	// The cross-package callee has its own node with its own edges: the graph
	// is module-wide, not per-package.
	helper := lookupFunc(t, pkgs, "sub", "Helper")
	assertEdges(t, g, helper, []string{"static:example.com/cg/sub.leaf"})
}

func TestCallGraphRecursionCycles(t *testing.T) {
	g, pkgs := loadCallGraphFixture(t)
	rec := lookupFunc(t, pkgs, "cg", "Rec")
	assertEdges(t, g, rec, []string{"static:example.com/cg.Rec"})

	ping := lookupFunc(t, pkgs, "cg", "Ping")
	pong := lookupFunc(t, pkgs, "cg", "Pong")
	assertEdges(t, g, ping, []string{"static:example.com/cg.Pong"})
	assertEdges(t, g, pong, []string{"static:example.com/cg.Ping"})
}

func TestCallGraphInterfaceDispatch(t *testing.T) {
	g, pkgs := loadCallGraphFixture(t)
	dispatch := lookupFunc(t, pkgs, "cg", "Dispatch")
	// w.Work() fans out to both implementations — value and pointer receiver —
	// but not to NotWorker.Work, whose signature differs.
	assertEdges(t, g, dispatch, []string{
		"iface:(*example.com/cg.Slow).Work",
		"iface:(example.com/cg.Fast).Work",
	})
}

func TestCallGraphMethodValueAndFuncValue(t *testing.T) {
	g, pkgs := loadCallGraphFixture(t)

	// f := s.Work; f() — the call of the function-typed local fans out to
	// every address-taken func() in the module: the method value itself and
	// NamedFn (taken in CallApply). Over-approximation is the contract.
	umv := lookupFunc(t, pkgs, "cg", "UseMethodValue")
	assertEdges(t, g, umv, []string{
		"dyn:(*example.com/cg.Slow).Work",
		"dyn:example.com/cg.NamedFn",
	})

	// Apply's parameter call resolves to the same dynamic candidate set.
	apply := lookupFunc(t, pkgs, "cg", "Apply")
	assertEdges(t, g, apply, []string{
		"dyn:(*example.com/cg.Slow).Work",
		"dyn:example.com/cg.NamedFn",
	})

	// CallApply's own call of Apply stays a precise static edge.
	callApply := lookupFunc(t, pkgs, "cg", "CallApply")
	assertEdges(t, g, callApply, []string{"static:example.com/cg.Apply"})
}

func TestCallGraphNodeForUndeclared(t *testing.T) {
	g, pkgs := loadCallGraphFixture(t)
	// Interface methods have no body and therefore no node.
	worker := lookupFunc(t, pkgs, "cg", "Dispatch")
	node := g.Node(worker)
	if node == nil {
		t.Fatal("Dispatch should have a node")
	}
	for _, e := range node.Calls {
		if e.Kind != EdgeInterface {
			t.Fatalf("Dispatch edge kind = %v, want interface", e.Kind)
		}
	}
}
