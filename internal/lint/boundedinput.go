package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// BoundedInput extends the model.MaxInput overflow guard from validation
// time to review time. Validate bounds every externally supplied magnitude
// (WCET, minimal release, per-bank demand, edge volume) to 2^40 so that
// linear accumulations over ≤2^20 tasks stay below Infinity (2^62) in int64
// arithmetic — but that budget only covers sums. Multiplying two runtime
// quantities (2^40 · 2^40 ≫ 2^63) silently wraps, so every `*` whose
// operands are model quantities (model.Cycles, model.Accesses) outside the
// MaxInput-checked helpers is flagged. A helper counts as checked when it
// references model.MaxInput itself (it enforces its own bound, like
// Validate and the stg/json readers) or lives in internal/model.
//
// Products with a compile-time-constant factor are accepted: the reviewer
// can bound them by inspection, and flagging `2*wcet` would drown the
// signal.
var BoundedInput = &Analyzer{
	Name: "boundedinput",
	Doc:  "flag multiplication of model quantities outside MaxInput-checked helpers",
	Run:  runBoundedInput,
}

func runBoundedInput(p *Pass) error {
	if strings.Contains(p.Pkg.PkgPath, "internal/model") {
		return nil // the package that defines and enforces the bound
	}
	for _, f := range p.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || referencesMaxInput(p, fd.Body) {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				be, ok := n.(*ast.BinaryExpr)
				if !ok || be.Op != token.MUL {
					return true
				}
				if isConstExpr(p.Pkg.Info, be.X) || isConstExpr(p.Pkg.Info, be.Y) {
					return true
				}
				if isModelQuantity(p.Pkg.Info.TypeOf(be.X)) || isModelQuantity(p.Pkg.Info.TypeOf(be.Y)) {
					p.Reportf(be.OpPos, "product of model quantities can overflow int64 (inputs are only bounded to MaxInput=2^40 each); bound one factor against model.MaxInput in this helper or justify with //mialint:ignore boundedinput -- <why the product stays below 2^62>")
				}
				return true
			})
		}
	}
	return nil
}

// isModelQuantity reports whether t is one of the bounded scalar types of
// the model package. Matching by (package name, type name) rather than full
// import path keeps the analyzer testable against fixture modules.
func isModelQuantity(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Name() != "model" {
		return false
	}
	return obj.Name() == "Cycles" || obj.Name() == "Accesses"
}

// referencesMaxInput reports whether the function body mentions the
// model.MaxInput bound, marking it as a checked helper.
func referencesMaxInput(p *Pass, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if ok && id.Name == "MaxInput" {
			if obj := p.Pkg.Info.Uses[id]; obj != nil && obj.Pkg() != nil && obj.Pkg().Name() == "model" {
				found = true
			}
		}
		return !found
	})
	return found
}
