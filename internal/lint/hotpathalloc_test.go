package lint_test

import (
	"testing"

	"github.com/mia-rt/mia/internal/lint"
	"github.com/mia-rt/mia/internal/lint/linttest"
)

func TestHotPathAlloc(t *testing.T) {
	linttest.Run(t, "testdata/hotpath", []*lint.Analyzer{lint.HotPathAlloc})
}
