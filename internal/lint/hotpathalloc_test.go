package lint_test

import (
	"fmt"
	"path/filepath"
	"strings"
	"testing"

	"github.com/mia-rt/mia/internal/lint"
	"github.com/mia-rt/mia/internal/lint/linttest"
)

func TestHotPathAlloc(t *testing.T) {
	linttest.Run(t, "testdata/hotpath", []*lint.Analyzer{lint.HotPathAlloc})
}

// TestTransitiveHotPathReportsFullPath pins the exact shape of the
// transitive diagnostics: the call-site position, the construct label, the
// callee-local position of the allocation, and — the load-bearing part —
// the full indicting call path from the annotated function down to the
// allocating helper.
func TestTransitiveHotPathReportsFullPath(t *testing.T) {
	dir, err := filepath.Abs("testdata/hotpath")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := lint.Load(dir)
	if err != nil {
		t.Fatalf("loading hotpath fixture: %v", err)
	}
	diags, err := lint.Run(pkgs, []*lint.Analyzer{lint.HotPathAlloc})
	if err != nil {
		t.Fatal(err)
	}
	var got []string
	for _, d := range diags {
		if !strings.Contains(d.Message, "(path:") {
			continue
		}
		got = append(got, fmt.Sprintf("%s:%d: %s", filepath.Base(d.Pos.Filename), d.Pos.Line, d.Message))
	}
	want := []string{
		"transitive.go:14: call to (*hp.state).fill reaches a make call at transitive.go:18 on the //mia:hotpath (path: (*hp.state).refill -> (*hp.state).fill)",
		"transitive.go:25: call to (*hp.state).viaA reaches a fmt.Sprintf call at transitive.go:30 on the //mia:hotpath (path: (*hp.state).tick -> (*hp.state).viaA -> (*hp.state).viaB)",
		"transitive.go:36: call to helpers.Scratch reaches a make call at helpers.go:9 on the //mia:hotpath (path: (*hp.state).borrow -> helpers.Scratch)",
	}
	if len(got) != len(want) {
		t.Fatalf("transitive diagnostics:\n  got  %q\n  want %q", got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Errorf("diagnostic %d:\n  got  %s\n  want %s", i, got[i], want[i])
		}
	}
}
