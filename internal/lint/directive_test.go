package lint_test

import (
	"testing"

	"github.com/mia-rt/mia/internal/lint"
	"github.com/mia-rt/mia/internal/lint/linttest"
)

// TestDirectives checks the pseudo-analyzer that polices the escape hatch
// itself: missing reasons, empty analyzer lists, unknown analyzer names,
// and stale (unused) ignores all surface as mialint diagnostics.
// Determinism is passed as the known analyzer so that the valid-but-unused
// directive in the fixture counts as stale.
func TestDirectives(t *testing.T) {
	linttest.Run(t, "testdata/directives", []*lint.Analyzer{lint.Determinism})
}
