// Package lint is the repository's domain-specific static-analysis suite:
// four analyzers that mechanically enforce the invariants the differential
// and AllocsPerRun test suites can only observe after a regression has
// landed. Each analyzer guards one load-bearing property of the
// reproduction:
//
//   - determinism: the analysis-core packages (internal/model,
//     internal/sched and its children, internal/arbiter, internal/rta) must
//     be bit-deterministic — the warm-vs-cold "identical bytes" guarantee of
//     the incremental scheduler dies silently on a wall-clock read, an
//     unseeded random draw, or an unordered map iteration that feeds
//     output, accumulation, or a scheduling decision.
//
//   - hotpathalloc: functions annotated //mia:hotpath (the incremental
//     scheduler's steady state, pinned at 0 allocs/op by AllocsPerRun
//     guards) must not contain allocating constructs: fmt calls, make/new,
//     escaping composite literals, non-reuse append forms, closures,
//     string building, and implicit interface boxing.
//
//   - ctxflow: context.Context must flow first-parameter-first through
//     every long-running API, context.Background/TODO are banned outside
//     package main and tests (libraries must accept, not invent, their
//     context), and `go` statements must be visibly joined (WaitGroup or
//     channel) so goroutine leaks cannot hide.
//
//   - boundedinput: arithmetic that multiplies two runtime model
//     quantities (model.Cycles, model.Accesses) outside internal/model's
//     MaxInput-checked validation helpers risks int64 overflow and is
//     flagged, extending the 2^40 input bound from validation time to
//     review time.
//
// The framework mirrors golang.org/x/tools/go/analysis (Analyzer, Pass,
// Diagnostic, a go-list-driven loader) but is built purely on the standard
// library so the module stays dependency-free; the CLI front-end lives in
// cmd/mialint and `make lint` runs it over the whole module.
//
// Every analyzer honors the escape hatch
//
//	//mialint:ignore <analyzer>[,<analyzer>...] -- <reason>
//
// which suppresses matching diagnostics on its own line and the line
// directly below it. The reason is mandatory: an ignore without one is
// itself reported, so every suppression documents the argument for why the
// invariant holds anyway.
package lint
