package lint

import (
	"go/ast"
	"go/types"
	"sort"
)

// EdgeKind classifies how a call site was resolved to its callee.
type EdgeKind int

const (
	// EdgeStatic is a direct call of a named function or a method on a
	// concrete receiver: the callee is exact.
	EdgeStatic EdgeKind = iota
	// EdgeInterface is a call through an interface method: the callee is one
	// of the in-scope concrete implementations (one edge per candidate).
	EdgeInterface
	// EdgeDynamic is a call of a function-typed value (field, variable,
	// parameter): the callee is one of the address-taken functions whose
	// signature matches (one edge per candidate).
	EdgeDynamic
)

// CallEdge is one resolved (site, callee) pair. A single syntactic call site
// produces several edges when resolution is conservative (interface and
// dynamic calls).
type CallEdge struct {
	Site   *ast.CallExpr
	Callee *types.Func
	Kind   EdgeKind
}

// CallNode is one declared function or method of the loaded module, with its
// outgoing calls in deterministic order: source order of the sites, and for
// multi-target sites, declaration order of the candidates.
type CallNode struct {
	Fn   *types.Func
	Decl *ast.FuncDecl
	Pkg  *Package
	// Calls lists every resolved outgoing edge, including calls made inside
	// function literals nested in the body (an over-approximation: the
	// literal may never run, but reachability analyses must assume it can).
	Calls []CallEdge
}

// CallGraph is a conservative over-approximation of the module's call
// structure, built purely from go/types information over the already-loaded
// packages — no SSA, no pointer analysis. Static calls resolve exactly;
// interface calls fan out to every in-scope implementation; calls of
// function-typed values fan out to every address-taken function with an
// identical signature. Soundness stance: an edge that cannot happen at
// runtime is acceptable, a missing edge is not — the analyses built on top
// (transitive hotpathalloc, goroleak) over-report and rely on the
// //mialint:ignore escape hatch, never under-report.
type CallGraph struct {
	nodes map[*types.Func]*CallNode
}

// Node returns the graph node for fn, or nil when fn has no declaration in
// the loaded packages (stdlib, interface methods, funcs of other modules).
func (g *CallGraph) Node(fn *types.Func) *CallNode {
	return g.nodes[fn]
}

// BuildCallGraph constructs the call graph over every loaded package.
func BuildCallGraph(pkgs []*Package) *CallGraph {
	b := &graphBuilder{
		graph:         &CallGraph{nodes: make(map[*types.Func]*CallNode)},
		methodsByName: make(map[string][]*types.Func),
	}
	// Pass 1: index every declared function and method, the concrete-method
	// name index (interface resolution), and the address-taken set (dynamic
	// resolution).
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				b.graph.nodes[fn] = &CallNode{Fn: fn, Decl: fd, Pkg: pkg}
				if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
					b.methodsByName[fn.Name()] = append(b.methodsByName[fn.Name()], fn)
				}
			}
		}
		b.collectAddressTaken(pkg)
	}
	sortFuncs(b.addressTaken)
	for _, fns := range b.methodsByName {
		sortFuncs(fns)
	}
	// Pass 2: resolve every call site inside every indexed body.
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				node := b.graph.nodes[fn]
				ast.Inspect(fd.Body, func(n ast.Node) bool {
					call, ok := n.(*ast.CallExpr)
					if !ok {
						return true
					}
					node.Calls = append(node.Calls, b.resolve(pkg, call)...)
					return true
				})
			}
		}
	}
	return b.graph
}

type graphBuilder struct {
	graph         *CallGraph
	methodsByName map[string][]*types.Func // concrete methods declared in the module
	addressTaken  []*types.Func            // functions referenced as values
}

// sortFuncs orders candidate lists by declaration position so multi-target
// edges are emitted deterministically.
func sortFuncs(fns []*types.Func) {
	sort.Slice(fns, func(i, j int) bool {
		if fns[i].Pos() != fns[j].Pos() {
			return fns[i].Pos() < fns[j].Pos()
		}
		return fns[i].FullName() < fns[j].FullName()
	})
}

// collectAddressTaken records every function or method referenced outside
// call position — assigned to a variable or field, passed as an argument,
// returned — since those are the possible targets of dynamic calls.
func (b *graphBuilder) collectAddressTaken(pkg *Package) {
	// Identifiers that are the operator of a call are plain invocations, not
	// value references; collect them first to exclude them.
	callFun := make(map[*ast.Ident]bool)
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			switch fun := ast.Unparen(call.Fun).(type) {
			case *ast.Ident:
				callFun[fun] = true
			case *ast.SelectorExpr:
				callFun[fun.Sel] = true
			}
			return true
		})
	}
	seen := make(map[*types.Func]bool)
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok || callFun[id] {
				return true
			}
			if fn, ok := pkg.Info.Uses[id].(*types.Func); ok && !seen[fn] {
				seen[fn] = true
				b.addressTaken = append(b.addressTaken, fn)
			}
			return true
		})
	}
}

// resolve maps one call expression to its conservative callee set.
func (b *graphBuilder) resolve(pkg *Package, call *ast.CallExpr) []CallEdge {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		switch obj := pkg.Info.Uses[fun].(type) {
		case *types.Func:
			return []CallEdge{{Site: call, Callee: obj, Kind: EdgeStatic}}
		case *types.Builtin:
			return nil
		}
	case *ast.SelectorExpr:
		if obj, ok := pkg.Info.Uses[fun.Sel].(*types.Func); ok {
			if iface := interfaceRecv(obj); iface != nil {
				return b.resolveInterface(call, obj.Name(), iface)
			}
			return []CallEdge{{Site: call, Callee: obj, Kind: EdgeStatic}}
		}
	}
	// Not a named callee: a conversion, or a call of a function-typed value.
	if tv, ok := pkg.Info.Types[call.Fun]; ok {
		if tv.IsType() {
			return nil // conversion
		}
		if sig, ok := tv.Type.Underlying().(*types.Signature); ok {
			return b.resolveDynamic(call, sig)
		}
	}
	return nil
}

// interfaceRecv returns the interface type a method is declared on, or nil
// for concrete methods and package-level functions.
func interfaceRecv(fn *types.Func) *types.Interface {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil
	}
	iface, _ := sig.Recv().Type().Underlying().(*types.Interface)
	return iface
}

// resolveInterface fans an interface method call out to every in-scope
// concrete method of the same name whose receiver type implements the
// interface.
func (b *graphBuilder) resolveInterface(call *ast.CallExpr, name string, iface *types.Interface) []CallEdge {
	var edges []CallEdge
	for _, cand := range b.methodsByName[name] {
		recv := cand.Type().(*types.Signature).Recv().Type()
		// The method set of *T includes T's methods, so checking the pointer
		// type covers both value and pointer receivers.
		if types.Implements(recv, iface) || types.Implements(types.NewPointer(derefType(recv)), iface) {
			edges = append(edges, CallEdge{Site: call, Callee: cand, Kind: EdgeInterface})
		}
	}
	return edges
}

func derefType(t types.Type) types.Type {
	if p, ok := t.(*types.Pointer); ok {
		return p.Elem()
	}
	return t
}

// resolveDynamic fans a call of a function-typed value out to every
// address-taken function with an identical signature (receivers excluded,
// matching how method values lose their receiver when taken as values).
func (b *graphBuilder) resolveDynamic(call *ast.CallExpr, sig *types.Signature) []CallEdge {
	var edges []CallEdge
	for _, cand := range b.addressTaken {
		csig, ok := cand.Type().(*types.Signature)
		if !ok {
			continue
		}
		if csig.Recv() != nil {
			// Compare the receiver-stripped method-value shape.
			csig = types.NewSignatureType(nil, nil, nil, csig.Params(), csig.Results(), csig.Variadic())
		}
		if types.Identical(stripRecv(sig), csig) {
			edges = append(edges, CallEdge{Site: call, Callee: cand, Kind: EdgeDynamic})
		}
	}
	return edges
}

func stripRecv(sig *types.Signature) *types.Signature {
	if sig.Recv() == nil {
		return sig
	}
	return types.NewSignatureType(nil, nil, nil, sig.Params(), sig.Results(), sig.Variadic())
}
