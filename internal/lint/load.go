package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
)

// Package is one loaded, parsed, and type-checked package — the unit a Pass
// analyzes. Only production files are loaded (no _test.go): the invariants
// the analyzers guard live in shipped code, and tests are exactly where
// constructs like context.Background are legitimate.
type Package struct {
	PkgPath string
	Name    string
	Dir     string
	Fset    *token.FileSet
	Files   []*ast.File
	Types   *types.Package
	Info    *types.Info
}

// listedPackage is the subset of `go list -json` output the loader needs.
type listedPackage struct {
	ImportPath string
	Name       string
	Dir        string
	GoFiles    []string
	Imports    []string
	Error      *struct{ Err string }
}

// Load lists the packages matching patterns in the module rooted at (or
// containing) dir, parses their production Go files, and type-checks them in
// dependency order. Imports that resolve inside the listed set are wired to
// the freshly checked packages; everything else (the standard library) is
// type-checked from source via go/importer, so no compiled export data and
// no network access are required.
func Load(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	listed, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}

	byPath := make(map[string]*listedPackage, len(listed))
	for _, lp := range listed {
		byPath[lp.ImportPath] = lp
	}

	fset := token.NewFileSet()
	std := importer.ForCompiler(fset, "source", nil)
	checked := make(map[string]*Package, len(listed))
	imp := &moduleImporter{std: std, module: byPath, checked: checked}

	var pkgs []*Package
	var visit func(lp *listedPackage) error
	visiting := make(map[string]bool)
	visit = func(lp *listedPackage) error {
		if checked[lp.ImportPath] != nil {
			return nil
		}
		if visiting[lp.ImportPath] {
			return fmt.Errorf("lint: import cycle through %s", lp.ImportPath)
		}
		visiting[lp.ImportPath] = true
		defer delete(visiting, lp.ImportPath)
		for _, dep := range lp.Imports {
			if next, ok := byPath[dep]; ok {
				if err := visit(next); err != nil {
					return err
				}
			}
		}
		pkg, err := checkPackage(fset, lp, imp)
		if err != nil {
			return err
		}
		checked[lp.ImportPath] = pkg
		pkgs = append(pkgs, pkg)
		return nil
	}
	for _, lp := range listed {
		if err := visit(lp); err != nil {
			return nil, err
		}
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].PkgPath < pkgs[j].PkgPath })
	return pkgs, nil
}

// goList shells out to `go list -json` in dir. GOPROXY is forced off: every
// package the linter can load type-checks from local source alone, and a
// lint run must never become a network fetch.
func goList(dir string, patterns []string) ([]*listedPackage, error) {
	args := append([]string{"list", "-json=ImportPath,Name,Dir,GoFiles,Imports,Error", "--"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	cmd.Env = append(os.Environ(), "GOPROXY=off", "GOWORK=off")
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("lint: go list %v: %v\n%s", patterns, err, stderr.String())
	}
	var listed []*listedPackage
	dec := json.NewDecoder(&stdout)
	for {
		lp := new(listedPackage)
		if err := dec.Decode(lp); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("lint: decoding go list output: %v", err)
		}
		if lp.Error != nil {
			return nil, fmt.Errorf("lint: %s: %s", lp.ImportPath, lp.Error.Err)
		}
		if len(lp.GoFiles) > 0 {
			listed = append(listed, lp)
		}
	}
	return listed, nil
}

// checkPackage parses and type-checks one listed package.
func checkPackage(fset *token.FileSet, lp *listedPackage, imp types.Importer) (*Package, error) {
	files := make([]*ast.File, 0, len(lp.GoFiles))
	for _, name := range lp.GoFiles {
		f, err := parser.ParseFile(fset, filepath.Join(lp.Dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("lint: %v", err)
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(lp.ImportPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %v", lp.ImportPath, err)
	}
	return &Package{
		PkgPath: lp.ImportPath,
		Name:    lp.Name,
		Dir:     lp.Dir,
		Fset:    fset,
		Files:   files,
		Types:   tpkg,
		Info:    info,
	}, nil
}

// moduleImporter resolves imports against the freshly checked module
// packages first and falls back to the source importer for the standard
// library. The fallback results are cached so the stdlib is checked once
// per Load.
type moduleImporter struct {
	std     types.Importer
	module  map[string]*listedPackage
	checked map[string]*Package
}

func (m *moduleImporter) Import(path string) (*types.Package, error) {
	if pkg, ok := m.checked[path]; ok {
		return pkg.Types, nil
	}
	if _, ok := m.module[path]; ok {
		return nil, fmt.Errorf("lint: module package %s imported before it was checked", path)
	}
	return m.std.Import(path)
}
