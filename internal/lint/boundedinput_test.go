package lint_test

import (
	"testing"

	"github.com/mia-rt/mia/internal/lint"
	"github.com/mia-rt/mia/internal/lint/linttest"
)

func TestBoundedInput(t *testing.T) {
	linttest.Run(t, "testdata/bounded", []*lint.Analyzer{lint.BoundedInput})
}
