package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"strings"
)

// hotpathDirective marks a function whose steady state must not allocate.
// The incremental scheduler's event loop carries this contract (pinned by
// AllocsPerRun guards); the analyzer moves the check from the benchmark to
// the line that would break it.
const hotpathDirective = "//mia:hotpath"

// HotPathAlloc flags allocating constructs inside functions annotated
// //mia:hotpath — and, transitively, in every unannotated module function
// reachable from one through the call graph. The AllocsPerRun guard tests
// observe the steady state of one specific workload; this analyzer also
// covers the branches that workload never takes (cold paths of the fast
// path) and the helpers the annotation does not reach, where an allocation
// hides until a production graph shape finds it. Transitive findings are
// reported at the call site inside the annotated function, with the full
// indicting path printed, because the fix belongs to whoever owns the
// hot-path contract, not the helper.
var HotPathAlloc = &Analyzer{
	Name: "hotpathalloc",
	Doc:  "forbid allocating constructs in //mia:hotpath functions and their call closure",
	Run:  runHotPathAlloc,
}

func runHotPathAlloc(p *Pass) error {
	c := &hotPathChecker{pass: p, summaries: make(map[*types.Func][]allocFinding)}
	for _, f := range p.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !isHotPath(fd) {
				continue
			}
			for _, af := range collectAllocs(p.Pkg, fd) {
				p.Reportf(af.pos, "%s", af.long)
			}
			c.checkTransitive(fd)
		}
	}
	return nil
}

// isHotPath reports whether the declaration's doc comment carries the
// //mia:hotpath directive line.
func isHotPath(fd *ast.FuncDecl) bool {
	if fd == nil || fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		if strings.HasPrefix(c.Text, hotpathDirective) {
			return true
		}
	}
	return false
}

// hotPathChecker memoizes per-function allocation summaries across the
// transitive sweeps of one package's annotated functions.
type hotPathChecker struct {
	pass      *Pass
	summaries map[*types.Func][]allocFinding
}

// checkTransitive walks every outgoing call edge of an annotated function
// and reports, at the call site, the first allocation reachable through
// unannotated module callees. Annotated callees are skipped: they carry
// their own contract and are checked directly by their own package's pass.
func (c *hotPathChecker) checkTransitive(fd *ast.FuncDecl) {
	p := c.pass
	fn, ok := p.Pkg.Info.Defs[fd.Name].(*types.Func)
	if !ok || p.Graph == nil {
		return
	}
	node := p.Graph.Node(fn)
	if node == nil {
		return
	}
	for _, e := range node.Calls {
		callee := p.Graph.Node(e.Callee)
		if callee == nil || isHotPath(callee.Decl) {
			continue
		}
		visited := map[*types.Func]bool{fn: true}
		path, af := c.findAllocPath(callee, visited)
		if af == nil {
			continue
		}
		labels := make([]string, 0, len(path)+1)
		labels = append(labels, hotPathFuncLabel(fn))
		for _, pf := range path {
			labels = append(labels, hotPathFuncLabel(pf))
		}
		pos := p.Pkg.Fset.Position(af.pos)
		p.Reportf(e.Site.Pos(), "call to %s reaches %s at %s:%d on the //mia:hotpath (path: %s)",
			hotPathFuncLabel(e.Callee), af.what, filepath.Base(pos.Filename), pos.Line,
			strings.Join(labels, " -> "))
	}
}

// findAllocPath depth-first searches the unannotated call closure under node
// for an unsuppressed allocating construct, returning the function path to
// it. Calls in source order, candidates in declaration order: the reported
// path is deterministic.
func (c *hotPathChecker) findAllocPath(node *CallNode, visited map[*types.Func]bool) ([]*types.Func, *allocFinding) {
	if visited[node.Fn] {
		return nil, nil
	}
	visited[node.Fn] = true
	for _, af := range c.allocs(node) {
		af := af
		// A //mialint:ignore on the construct's own line justifies it for
		// the whole closure — the reason lives next to the code it excuses.
		if c.pass.Suppressed(af.pos) {
			continue
		}
		return []*types.Func{node.Fn}, &af
	}
	for _, e := range node.Calls {
		callee := c.pass.Graph.Node(e.Callee)
		if callee == nil || isHotPath(callee.Decl) {
			continue
		}
		if path, af := c.findAllocPath(callee, visited); af != nil {
			return append([]*types.Func{node.Fn}, path...), af
		}
	}
	return nil, nil
}

func (c *hotPathChecker) allocs(node *CallNode) []allocFinding {
	if s, ok := c.summaries[node.Fn]; ok {
		return s
	}
	s := collectAllocs(node.Pkg, node.Decl)
	c.summaries[node.Fn] = s
	return s
}

// hotPathFuncLabel renders a function for path reports: package-qualified by
// name (not full import path) so paths stay readable.
func hotPathFuncLabel(fn *types.Func) string {
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		recv := types.TypeString(sig.Recv().Type(), func(p *types.Package) string { return p.Name() })
		return "(" + recv + ")." + fn.Name()
	}
	if fn.Pkg() != nil {
		return fn.Pkg().Name() + "." + fn.Name()
	}
	return fn.Name()
}

// allocFinding is one allocating construct found in a function body. long is
// the full diagnostic used when the construct sits directly inside an
// annotated function; what is the compact label used when it is reached
// transitively and reported at a distant call site.
type allocFinding struct {
	pos  token.Pos
	long string
	what string
}

// collectAllocs scans one function body for allocating constructs. It is
// pure — no reporting, no suppression — so the same summary serves the
// direct check of an annotated function and the transitive sweep through
// its unannotated callees (which may live in other packages; pkg must be
// the package that declares fd).
func collectAllocs(pkg *Package, fd *ast.FuncDecl) []allocFinding {
	info := pkg.Info
	var found []allocFinding
	add := func(pos token.Pos, what, long string) {
		found = append(found, allocFinding{pos: pos, what: what, long: long})
	}

	// The amortized reuse idiom `x = append(x[:0], ...)` / `x = append(x,
	// ...)` is the one append form the hot path is allowed: its steady
	// state writes into retained backing arrays. Any append whose result
	// lands anywhere else (fresh variable, argument, return) is a fresh
	// slice per call. Collect the sanctioned calls first.
	reuseAppend := map[*ast.CallExpr]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || as.Tok != token.ASSIGN || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for _, rhs := range as.Rhs {
			if call, ok := ast.Unparen(rhs).(*ast.CallExpr); ok && isBuiltin(info, call, "append") {
				reuseAppend[call] = true
			}
		}
		return true
	})

	var results *types.Tuple
	if sig, ok := info.Defs[fd.Name].(*types.Func); ok {
		results = sig.Type().(*types.Signature).Results()
	}

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			add(n.Pos(), "a closure literal",
				"closure literal in //mia:hotpath function allocates; hoist the function to a method or package-level func")
			return false // the closure body is not the hot path's steady state
		case *ast.CallExpr:
			collectAllocCall(info, n, reuseAppend, add)
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if _, ok := ast.Unparen(n.X).(*ast.CompositeLit); ok {
					add(n.Pos(), "a &composite literal",
						"&composite literal in //mia:hotpath function escapes to the heap; reuse a pooled value instead")
				}
			}
		case *ast.CompositeLit:
			if tv, ok := info.Types[n]; ok {
				switch tv.Type.Underlying().(type) {
				case *types.Slice:
					add(n.Pos(), "a slice literal",
						"slice literal in //mia:hotpath function allocates its backing array; reuse a retained buffer")
				case *types.Map:
					add(n.Pos(), "a map literal",
						"map literal in //mia:hotpath function allocates; reuse a retained map or index by dense IDs")
				}
			}
		case *ast.BinaryExpr:
			if n.Op == token.ADD {
				if tv, ok := info.Types[n]; ok && isStringType(tv.Type) && !isConstExpr(info, n) {
					add(n.Pos(), "a string concatenation",
						"string concatenation in //mia:hotpath function allocates; format off the hot path")
				}
			}
		case *ast.AssignStmt:
			for i, rhs := range n.Rhs {
				if i < len(n.Lhs) {
					addBoxing(info, info.TypeOf(n.Lhs[i]), rhs, "assignment", add)
				}
			}
		case *ast.ReturnStmt:
			if results != nil && len(n.Results) == results.Len() {
				for i, r := range n.Results {
					addBoxing(info, results.At(i).Type(), r, "return", add)
				}
			}
		}
		return true
	})
	return found
}

func collectAllocCall(info *types.Info, call *ast.CallExpr, reuseAppend map[*ast.CallExpr]bool, add func(token.Pos, string, string)) {
	// Builtins that always (or, for non-reuse append forms, per-call)
	// allocate.
	switch {
	case isBuiltin(info, call, "make"):
		add(call.Pos(), "a make call",
			"make in //mia:hotpath function allocates; size buffers at construction and reuse them")
	case isBuiltin(info, call, "new"):
		add(call.Pos(), "a new call",
			"new in //mia:hotpath function allocates; reuse a pooled value")
	case isBuiltin(info, call, "append"):
		if !reuseAppend[call] {
			add(call.Pos(), "a non-reuse append",
				"append result is not assigned back to its source (x = append(x, ...)); this form builds a fresh slice per call")
		}
	}

	// String conversions from byte/rune slices copy.
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		if isStringType(tv.Type) {
			if _, ok := info.TypeOf(call.Args[0]).Underlying().(*types.Slice); ok {
				add(call.Pos(), "a string-from-slice conversion",
					"string conversion from a slice in //mia:hotpath function copies; keep the []byte form on the hot path")
			}
		}
	}

	if fn := calleeFuncIn(info, call); fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
		add(call.Pos(), "a fmt."+fn.Name()+" call",
			fmt.Sprintf("fmt.%s in //mia:hotpath function allocates (formatting state and boxed operands); format off the hot path", fn.Name()))
		return // the call is already banned; per-argument boxing reports would be noise
	}

	// Implicit interface boxing of call arguments: passing a non-pointer
	// concrete value where an interface is expected heap-allocates the box.
	// Type conversions have a non-signature Fun type, so they fall out here.
	sig, ok := info.TypeOf(call.Fun).(*types.Signature)
	if !ok {
		return
	}
	for i, arg := range call.Args {
		var param types.Type
		switch {
		case sig.Variadic() && i >= sig.Params().Len()-1:
			if call.Ellipsis != token.NoPos {
				continue // forwarding an existing slice: no per-element boxing here
			}
			param = sig.Params().At(sig.Params().Len() - 1).Type().(*types.Slice).Elem()
		case i < sig.Params().Len():
			param = sig.Params().At(i).Type()
		default:
			continue
		}
		addBoxing(info, param, arg, "argument", add)
	}
}

// addBoxing records when expr's concrete value is implicitly converted to an
// interface-typed destination, which heap-allocates the box for every value
// kind that is not already pointer-shaped.
func addBoxing(info *types.Info, dst types.Type, expr ast.Expr, what string, add func(token.Pos, string, string)) {
	if dst == nil {
		return
	}
	if _, ok := dst.Underlying().(*types.Interface); !ok {
		return
	}
	src := info.TypeOf(expr)
	if src == nil || isPointerShaped(src) {
		return
	}
	if _, ok := src.(*types.Tuple); ok {
		return // multi-value assignment mismatch; not a conversion site
	}
	if tv, ok := info.Types[expr]; ok && tv.Value != nil {
		return // constants up to the compiler's staticuint64s table; accept
	}
	add(expr.Pos(), fmt.Sprintf("interface boxing of %s", src),
		fmt.Sprintf("%s implicitly boxes %s into an interface, which allocates on the //mia:hotpath; pass a concrete type or a pointer", what, src))
}

// isPointerShaped reports whether values of t fit in an interface word
// without a heap box: pointers, channels, maps, funcs, unsafe pointers, nil,
// and interfaces themselves (interface-to-interface conversions copy the
// word pair).
func isPointerShaped(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature, *types.Interface:
		return true
	case *types.Basic:
		return u.Kind() == types.UnsafePointer || u.Kind() == types.UntypedNil
	}
	return false
}

func isBuiltin(info *types.Info, call *ast.CallExpr, name string) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	b, ok := info.Uses[id].(*types.Builtin)
	return ok && b.Name() == name
}

func isStringType(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

// isConstExpr reports whether the typechecker folded expr to a constant.
func isConstExpr(info *types.Info, expr ast.Expr) bool {
	tv, ok := info.Types[expr]
	return ok && tv.Value != nil
}

// calleeFuncIn resolves a call expression to the *types.Func it invokes
// using the given package's type info, or nil for builtins, conversions, and
// calls of function-typed values.
func calleeFuncIn(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		if obj, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return obj
		}
	case *ast.Ident:
		if obj, ok := info.Uses[fun].(*types.Func); ok {
			return obj
		}
	}
	return nil
}
