package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// hotpathDirective marks a function whose steady state must not allocate.
// The incremental scheduler's event loop carries this contract (pinned by
// AllocsPerRun guards); the analyzer moves the check from the benchmark to
// the line that would break it.
const hotpathDirective = "//mia:hotpath"

// HotPathAlloc flags allocating constructs inside functions annotated
// //mia:hotpath. The AllocsPerRun guard tests observe the steady state of
// one specific workload; this analyzer also covers the branches that
// workload never takes (cold paths of the fast path), where an allocation
// hides until a production graph shape finds it.
var HotPathAlloc = &Analyzer{
	Name: "hotpathalloc",
	Doc:  "forbid allocating constructs in //mia:hotpath functions",
	Run:  runHotPathAlloc,
}

func runHotPathAlloc(p *Pass) error {
	for _, f := range p.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !isHotPath(fd) {
				continue
			}
			checkHotPathBody(p, fd)
		}
	}
	return nil
}

// isHotPath reports whether the declaration's doc comment carries the
// //mia:hotpath directive line.
func isHotPath(fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		if strings.HasPrefix(c.Text, hotpathDirective) {
			return true
		}
	}
	return false
}

func checkHotPathBody(p *Pass, fd *ast.FuncDecl) {
	info := p.Pkg.Info

	// The amortized reuse idiom `x = append(x[:0], ...)` / `x = append(x,
	// ...)` is the one append form the hot path is allowed: its steady
	// state writes into retained backing arrays. Any append whose result
	// lands anywhere else (fresh variable, argument, return) is a fresh
	// slice per call. Collect the sanctioned calls first.
	reuseAppend := map[*ast.CallExpr]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || as.Tok != token.ASSIGN || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for _, rhs := range as.Rhs {
			if call, ok := ast.Unparen(rhs).(*ast.CallExpr); ok && isBuiltin(info, call, "append") {
				reuseAppend[call] = true
			}
		}
		return true
	})

	var results *types.Tuple
	if sig, ok := info.Defs[fd.Name].(*types.Func); ok {
		results = sig.Type().(*types.Signature).Results()
	}

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			p.Reportf(n.Pos(), "closure literal in //mia:hotpath function allocates; hoist the function to a method or package-level func")
			return false // the closure body is not the hot path's steady state
		case *ast.CallExpr:
			checkHotPathCall(p, info, n, reuseAppend)
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if _, ok := ast.Unparen(n.X).(*ast.CompositeLit); ok {
					p.Reportf(n.Pos(), "&composite literal in //mia:hotpath function escapes to the heap; reuse a pooled value instead")
				}
			}
		case *ast.CompositeLit:
			if tv, ok := info.Types[n]; ok {
				switch tv.Type.Underlying().(type) {
				case *types.Slice:
					p.Reportf(n.Pos(), "slice literal in //mia:hotpath function allocates its backing array; reuse a retained buffer")
				case *types.Map:
					p.Reportf(n.Pos(), "map literal in //mia:hotpath function allocates; reuse a retained map or index by dense IDs")
				}
			}
		case *ast.BinaryExpr:
			if n.Op == token.ADD {
				if tv, ok := info.Types[n]; ok && isStringType(tv.Type) && !isConstExpr(info, n) {
					p.Reportf(n.Pos(), "string concatenation in //mia:hotpath function allocates; format off the hot path")
				}
			}
		case *ast.AssignStmt:
			for i, rhs := range n.Rhs {
				if i < len(n.Lhs) {
					checkBoxing(p, info, info.TypeOf(n.Lhs[i]), rhs, "assignment")
				}
			}
		case *ast.ReturnStmt:
			if results != nil && len(n.Results) == results.Len() {
				for i, r := range n.Results {
					checkBoxing(p, info, results.At(i).Type(), r, "return")
				}
			}
		}
		return true
	})
}

func checkHotPathCall(p *Pass, info *types.Info, call *ast.CallExpr, reuseAppend map[*ast.CallExpr]bool) {
	// Builtins that always (or, for non-reuse append forms, per-call)
	// allocate.
	switch {
	case isBuiltin(info, call, "make"):
		p.Reportf(call.Pos(), "make in //mia:hotpath function allocates; size buffers at construction and reuse them")
	case isBuiltin(info, call, "new"):
		p.Reportf(call.Pos(), "new in //mia:hotpath function allocates; reuse a pooled value")
	case isBuiltin(info, call, "append"):
		if !reuseAppend[call] {
			p.Reportf(call.Pos(), "append result is not assigned back to its source (x = append(x, ...)); this form builds a fresh slice per call")
		}
	}

	// String conversions from byte/rune slices copy.
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		if isStringType(tv.Type) {
			if _, ok := info.TypeOf(call.Args[0]).Underlying().(*types.Slice); ok {
				p.Reportf(call.Pos(), "string conversion from a slice in //mia:hotpath function copies; keep the []byte form on the hot path")
			}
		}
	}

	if fn := p.calleeFunc(call); fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
		p.Reportf(call.Pos(), "fmt.%s in //mia:hotpath function allocates (formatting state and boxed operands); format off the hot path", fn.Name())
		return // the call is already banned; per-argument boxing reports would be noise
	}

	// Implicit interface boxing of call arguments: passing a non-pointer
	// concrete value where an interface is expected heap-allocates the box.
	// Type conversions have a non-signature Fun type, so they fall out here.
	sig, ok := info.TypeOf(call.Fun).(*types.Signature)
	if !ok {
		return
	}
	for i, arg := range call.Args {
		var param types.Type
		switch {
		case sig.Variadic() && i >= sig.Params().Len()-1:
			if call.Ellipsis != token.NoPos {
				continue // forwarding an existing slice: no per-element boxing here
			}
			param = sig.Params().At(sig.Params().Len() - 1).Type().(*types.Slice).Elem()
		case i < sig.Params().Len():
			param = sig.Params().At(i).Type()
		default:
			continue
		}
		checkBoxing(p, info, param, arg, "argument")
	}
}

// checkBoxing reports when expr's concrete value is implicitly converted to
// an interface-typed destination, which heap-allocates the box for every
// value kind that is not already pointer-shaped.
func checkBoxing(p *Pass, info *types.Info, dst types.Type, expr ast.Expr, what string) {
	if dst == nil {
		return
	}
	if _, ok := dst.Underlying().(*types.Interface); !ok {
		return
	}
	src := info.TypeOf(expr)
	if src == nil || isPointerShaped(src) {
		return
	}
	if _, ok := src.(*types.Tuple); ok {
		return // multi-value assignment mismatch; not a conversion site
	}
	if tv, ok := info.Types[expr]; ok && tv.Value != nil {
		return // constants up to the compiler's staticuint64s table; accept
	}
	p.Reportf(expr.Pos(), "%s implicitly boxes %s into an interface, which allocates on the //mia:hotpath; pass a concrete type or a pointer", what, src)
}

// isPointerShaped reports whether values of t fit in an interface word
// without a heap box: pointers, channels, maps, funcs, unsafe pointers, nil,
// and interfaces themselves (interface-to-interface conversions copy the
// word pair).
func isPointerShaped(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature, *types.Interface:
		return true
	case *types.Basic:
		return u.Kind() == types.UnsafePointer || u.Kind() == types.UntypedNil
	}
	return false
}

func isBuiltin(info *types.Info, call *ast.CallExpr, name string) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	b, ok := info.Uses[id].(*types.Builtin)
	return ok && b.Name() == name
}

func isStringType(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

// isConstExpr reports whether the typechecker folded expr to a constant.
func isConstExpr(info *types.Info, expr ast.Expr) bool {
	tv, ok := info.Types[expr]
	return ok && tv.Value != nil
}
