package lint_test

import (
	"testing"

	"github.com/mia-rt/mia/internal/lint"
	"github.com/mia-rt/mia/internal/lint/linttest"
)

func TestGoRoLeak(t *testing.T) {
	linttest.Run(t, "testdata/goroleak", []*lint.Analyzer{lint.GoRoLeak})
}
