package lint

// All returns the full mialint analyzer suite in stable order.
func All() []*Analyzer {
	return []*Analyzer{BoundedInput, CtxFlow, Determinism, GoRoLeak, HandlerFlow, HotPathAlloc, LockSafe}
}

// ByName resolves a subset of All by analyzer name; unknown names return
// nil so the caller can report them.
func ByName(names []string) []*Analyzer {
	all := All()
	var out []*Analyzer
	for _, n := range names {
		var found *Analyzer
		for _, a := range all {
			if a.Name == n {
				found = a
				break
			}
		}
		if found == nil {
			return nil
		}
		out = append(out, found)
	}
	return out
}
