package lint_test

import (
	"context"
	"strings"
	"testing"

	"github.com/mia-rt/mia/internal/lint"
)

// render joins diagnostics exactly the way the CLI prints them, so a
// mismatch here is a mismatch the user would see.
func render(diags []lint.Diagnostic) string {
	var b strings.Builder
	for _, d := range diags {
		b.WriteString(d.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// TestRunParallelByteIdentical pins the acceptance criterion that mialint's
// diagnostic stream is byte-identical at any worker count: the sequential
// Run and RunParallel at several job counts must render the same bytes over
// a multi-package fixture that actually produces diagnostics.
func TestRunParallelByteIdentical(t *testing.T) {
	pkgs, err := lint.Load("testdata/hotpath", "./...")
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if len(pkgs) < 2 {
		t.Fatalf("fixture loaded %d packages, need at least 2 for a meaningful parallel run", len(pkgs))
	}
	seq, err := lint.Run(pkgs, lint.All())
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(seq) == 0 {
		t.Fatal("fixture produced no diagnostics; the identity check would be vacuous")
	}
	want := render(seq)
	for _, jobs := range []int{1, 2, 4, 8} {
		par, err := lint.RunParallel(context.Background(), jobs, pkgs, lint.All())
		if err != nil {
			t.Fatalf("RunParallel(jobs=%d): %v", jobs, err)
		}
		if got := render(par); got != want {
			t.Errorf("RunParallel(jobs=%d) output differs from sequential Run:\n--- sequential\n%s\n--- jobs=%d\n%s", jobs, want, jobs, got)
		}
	}
}
