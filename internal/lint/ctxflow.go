package lint

import (
	"go/ast"
	"go/types"
)

// CtxFlow guards the cancellation contract the PR-3 sweep established by
// hand: every CLI and server path tears down promptly on SIGINT/SIGTERM
// because context flows from main() to the leaf that blocks. Three rules
// keep it that way:
//
//  1. context.Background()/context.TODO() are banned outside package main:
//     a library that invents its own root context silently detaches its
//     callees from the caller's cancellation, which is exactly the bug
//     class that made canceled sweeps report success.
//  2. A function that takes a context.Context must take it as the first
//     parameter, so call sites and wrappers stay mechanical.
//  3. A `go` statement whose goroutine is not visibly joined — no
//     sync.WaitGroup bracket, no channel send/close from the goroutine —
//     is flagged as a potential leak; the serving layers assert goroutine
//     counts in tests, and an unjoined goroutine defeats those checks.
var CtxFlow = &Analyzer{
	Name: "ctxflow",
	Doc:  "enforce context-first signatures, ban context.Background/TODO outside main, flag join-less goroutines",
	Run:  runCtxFlow,
}

func runCtxFlow(p *Pass) error {
	isMain := p.Pkg.Name == "main"
	p.inspect(func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if isMain {
				return true
			}
			fn := p.calleeFunc(n)
			if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "context" {
				return true
			}
			if name := fn.Name(); name == "Background" || name == "TODO" {
				p.Reportf(n.Pos(), "context.%s in a library package detaches callees from the caller's cancellation; accept a ctx parameter and pass it through", name)
			}
		case *ast.FuncDecl:
			checkCtxPosition(p, n.Type, n.Name.Name)
		case *ast.FuncLit:
			checkCtxPosition(p, n.Type, "func literal")
		case *ast.GoStmt:
			if !isMain && !visiblyJoined(p, n) {
				p.Reportf(n.Pos(), "goroutine has no visible join (no WaitGroup Add/Done bracket, no channel send or close); a leak here survives shutdown drains — join it or justify with //mialint:ignore ctxflow -- <who waits for it>")
			}
		}
		return true
	})
	return nil
}

// checkCtxPosition enforces rule 2: if any parameter is a context.Context,
// it must be the first.
func checkCtxPosition(p *Pass, ft *ast.FuncType, name string) {
	if ft.Params == nil {
		return
	}
	pos := 0
	for _, field := range ft.Params.List {
		n := len(field.Names)
		if n == 0 {
			n = 1
		}
		if isContextType(p.Pkg.Info.TypeOf(field.Type)) && pos > 0 {
			p.Reportf(field.Pos(), "%s takes context.Context at parameter %d; context must be the first parameter so cancellation plumbs mechanically", name, pos)
		}
		pos += n
	}
}

func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

// visiblyJoined applies a syntactic join heuristic to a go statement: the
// goroutine counts as joined when its body (for function literals) sends on
// or closes a channel or calls a WaitGroup/errgroup Done/Do, or when the
// enclosing file brackets goroutines with WaitGroup Add/Wait. The analyzer
// only needs to separate the deliberate worker-pool pattern from the
// fire-and-forget `go f()` that leaks; the escape hatch covers the rest.
func visiblyJoined(p *Pass, g *ast.GoStmt) bool {
	lit, ok := ast.Unparen(g.Call.Fun).(*ast.FuncLit)
	if !ok {
		// `go method()` with no literal body to inspect: require an ignore
		// to document the join, except for the bound-method worker idiom
		// where the callee is in the same package and can be audited by the
		// analyzer run itself — keep it simple and treat named locals as
		// unjoined.
		return false
	}
	joined := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SendStmt:
			joined = true
		case *ast.CallExpr:
			switch fun := ast.Unparen(n.Fun).(type) {
			case *ast.Ident:
				if fun.Name == "close" {
					if _, isBuiltinClose := p.Pkg.Info.Uses[fun].(*types.Builtin); isBuiltinClose {
						joined = true
					}
				}
			case *ast.SelectorExpr:
				if fun.Sel.Name == "Done" {
					joined = true
				}
			}
		}
		return !joined
	})
	return joined
}
