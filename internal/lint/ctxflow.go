package lint

import (
	"go/ast"
	"go/types"
)

// CtxFlow guards the cancellation contract the PR-3 sweep established by
// hand: every CLI and server path tears down promptly on SIGINT/SIGTERM
// because context flows from main() to the leaf that blocks. Two rules
// keep it that way (the goroutine-join rule that used to live here
// graduated into the call-graph-backed goroleak analyzer):
//
//  1. context.Background()/context.TODO() are banned outside package main:
//     a library that invents its own root context silently detaches its
//     callees from the caller's cancellation, which is exactly the bug
//     class that made canceled sweeps report success.
//  2. A function that takes a context.Context must take it as the first
//     parameter, so call sites and wrappers stay mechanical.
var CtxFlow = &Analyzer{
	Name: "ctxflow",
	Doc:  "enforce context-first signatures, ban context.Background/TODO outside main",
	Run:  runCtxFlow,
}

func runCtxFlow(p *Pass) error {
	isMain := p.Pkg.Name == "main"
	p.inspect(func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if isMain {
				return true
			}
			fn := p.calleeFunc(n)
			if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "context" {
				return true
			}
			if name := fn.Name(); name == "Background" || name == "TODO" {
				p.Reportf(n.Pos(), "context.%s in a library package detaches callees from the caller's cancellation; accept a ctx parameter and pass it through", name)
			}
		case *ast.FuncDecl:
			checkCtxPosition(p, n.Type, n.Name.Name)
		case *ast.FuncLit:
			checkCtxPosition(p, n.Type, "func literal")
		}
		return true
	})
	return nil
}

// checkCtxPosition enforces rule 2: if any parameter is a context.Context,
// it must be the first.
func checkCtxPosition(p *Pass, ft *ast.FuncType, name string) {
	if ft.Params == nil {
		return
	}
	pos := 0
	for _, field := range ft.Params.List {
		n := len(field.Names)
		if n == 0 {
			n = 1
		}
		if isContextType(p.Pkg.Info.TypeOf(field.Type)) && pos > 0 {
			p.Reportf(field.Pos(), "%s takes context.Context at parameter %d; context must be the first parameter so cancellation plumbs mechanically", name, pos)
		}
		pos += n
	}
}

func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}
