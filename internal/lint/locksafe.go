package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// LockSafe checks sync.Mutex / sync.RWMutex discipline by abstract
// interpretation of each function body. Three invariant classes:
//
//  1. A lock acquired and released non-deferred must be released on *every*
//     return path — the early-return-while-held bug that -race only catches
//     when the two racing requests actually collide in a test run.
//  2. No path may lock a mutex it already holds (write-after-write or
//     write-after-read upgrade): self-deadlock.
//  3. No blocking operation — channel send/receive, select without default,
//     range over a channel, WaitGroup/Cond Wait, net/http round trips —
//     while any lock is held: the serving tier's tail latency budget does
//     not include waiting on a channel inside a critical section.
//
// The interpretation is path-sensitive-lite: branches are analyzed with
// cloned states and merged by taking the minimum held count, so a lock
// acquired only on one arm does not leak a false "still held" into the
// join. A function that locks and never unlocks anywhere (a lock-helper
// whose caller owns the release) is deliberately not flagged by rule 1; the
// analyzer only enforces release on functions that do release somewhere,
// i.e. where the contract is visibly intraprocedural.
var LockSafe = &Analyzer{
	Name: "locksafe",
	Doc:  "enforce lock release on all return paths, no double-lock, no blocking while locked",
	Run:  runLockSafe,
}

func runLockSafe(p *Pass) error {
	for _, f := range p.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkLockSafe(p, fd)
		}
	}
	return nil
}

// lockState is the abstract state at one program point: how many times each
// lock key is held, and how many releases are scheduled via defer.
type lockState struct {
	held     map[string]int
	deferred map[string]int
}

func newLockState() *lockState {
	return &lockState{held: map[string]int{}, deferred: map[string]int{}}
}

func (s *lockState) clone() *lockState {
	c := newLockState()
	for k, v := range s.held {
		c.held[k] = v
	}
	for k, v := range s.deferred {
		c.deferred[k] = v
	}
	return c
}

// anyHeld returns the lexicographically first held key, so blocking-while-
// locked diagnostics are deterministic when several locks are held.
func (s *lockState) anyHeld() (string, bool) {
	var keys []string
	for k, v := range s.held {
		if v > 0 {
			keys = append(keys, k)
		}
	}
	if len(keys) == 0 {
		return "", false
	}
	sort.Strings(keys)
	return keys[0], true
}

// mergeMin joins two branch states by minimum held count: a lock held on
// only one arm is treated as released at the join, which stays quiet on
// correlated-condition code at the cost of missing some conditional leaks
// (those still surface at returns *inside* the holding arm).
func mergeMin(a, b *lockState) *lockState {
	m := newLockState()
	for k, v := range a.held {
		if bv := b.held[k]; bv < v {
			v = bv
		}
		if v > 0 {
			m.held[k] = v
		}
	}
	for k, v := range a.deferred {
		if bv := b.deferred[k]; bv < v {
			v = bv
		}
		if v > 0 {
			m.deferred[k] = v
		}
	}
	return m
}

// lockWalker carries one function's analysis.
type lockWalker struct {
	pass *Pass
	info *types.Info
	// releases holds the keys the body visibly releases outside defers; rule
	// 1 (released on every return path) applies only to those.
	releases map[string]bool
}

func checkLockSafe(p *Pass, fd *ast.FuncDecl) {
	w := &lockWalker{pass: p, info: p.Pkg.Info, releases: map[string]bool{}}
	// Pre-scan for non-deferred releases; defer bodies and nested goroutines
	// release on someone else's schedule.
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.DeferStmt, *ast.GoStmt, *ast.FuncLit:
			return false
		case *ast.CallExpr:
			if key, op, ok := w.mutexOp(n); ok && (op == "Unlock" || op == "RUnlock") {
				w.releases[key] = true
			}
		}
		return true
	})

	st := newLockState()
	if terminated := w.walkStmts(fd.Body.List, st); !terminated {
		w.checkRelease(fd.Body.Rbrace, st, "when the function returns")
	}
}

// walkStmts interprets a statement list, returning true when the path
// terminates (return / branch out) before the end of the list.
func (w *lockWalker) walkStmts(stmts []ast.Stmt, st *lockState) bool {
	for _, s := range stmts {
		if w.walkStmt(s, st) {
			return true
		}
	}
	return false
}

func (w *lockWalker) walkStmt(s ast.Stmt, st *lockState) bool {
	switch s := s.(type) {
	case *ast.ExprStmt:
		w.scanExpr(s.X, st)
	case *ast.SendStmt:
		w.scanExpr(s.Chan, st)
		w.scanExpr(s.Value, st)
		w.blocking(s.Arrow, "channel send", st)
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			w.scanExpr(e, st)
		}
		for _, e := range s.Lhs {
			w.scanExpr(e, st)
		}
	case *ast.IncDecStmt:
		w.scanExpr(s.X, st)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, e := range vs.Values {
						w.scanExpr(e, st)
					}
				}
			}
		}
	case *ast.DeferStmt:
		w.deferRelease(s.Call, st)
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			w.scanExpr(e, st)
		}
		w.checkRelease(s.Pos(), st, "on this return path")
		return true
	case *ast.BlockStmt:
		return w.walkStmts(s.List, st)
	case *ast.IfStmt:
		if s.Init != nil {
			w.walkStmt(s.Init, st)
		}
		w.scanExpr(s.Cond, st)
		then := st.clone()
		thenTerm := w.walkStmts(s.Body.List, then)
		els := st.clone()
		elseTerm := false
		if s.Else != nil {
			elseTerm = w.walkStmt(s.Else, els)
		}
		switch {
		case thenTerm && elseTerm:
			return true
		case thenTerm:
			*st = *els
		case elseTerm:
			*st = *then
		default:
			*st = *mergeMin(then, els)
		}
	case *ast.ForStmt:
		if s.Init != nil {
			w.walkStmt(s.Init, st)
		}
		w.scanExpr(s.Cond, st)
		body := st.clone()
		w.walkStmts(s.Body.List, body)
		if s.Post != nil {
			w.walkStmt(s.Post, body)
		}
		*st = *mergeMin(st, body) // the loop may run zero times
	case *ast.RangeStmt:
		w.scanExpr(s.X, st)
		if t := w.info.TypeOf(s.X); t != nil {
			if _, ok := t.Underlying().(*types.Chan); ok {
				w.blocking(s.Range, "range over a channel", st)
			}
		}
		body := st.clone()
		w.walkStmts(s.Body.List, body)
		*st = *mergeMin(st, body)
	case *ast.SelectStmt:
		hasDefault := false
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
				hasDefault = true
			}
		}
		if !hasDefault {
			w.blocking(s.Select, "blocking select", st)
		}
		w.mergeClauses(s.Body.List, st, func(c ast.Stmt, cst *lockState) ([]ast.Stmt, bool) {
			// The comm operation's blocking behavior is the select's, already
			// accounted above — interpreting it again would double-report.
			return c.(*ast.CommClause).Body, false
		})
	case *ast.SwitchStmt:
		if s.Init != nil {
			w.walkStmt(s.Init, st)
		}
		w.scanExpr(s.Tag, st)
		w.mergeCaseClauses(s.Body.List, st)
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			w.walkStmt(s.Init, st)
		}
		w.walkStmt(s.Assign, st)
		w.mergeCaseClauses(s.Body.List, st)
	case *ast.GoStmt:
		// Argument expressions evaluate on this goroutine; the spawned body
		// does not affect this path's lock state (goroleak owns it).
		for _, a := range s.Call.Args {
			w.scanExpr(a, st)
		}
	case *ast.LabeledStmt:
		return w.walkStmt(s.Stmt, st)
	case *ast.BranchStmt:
		// break/continue/goto leave the linear path; treat as terminating so
		// the states they carry never reach a misleading join.
		return true
	}
	return false
}

// mergeClauses interprets each clause with a cloned state and joins the
// survivors by min; all-terminating clause sets terminate the statement.
func (w *lockWalker) mergeClauses(clauses []ast.Stmt, st *lockState, body func(ast.Stmt, *lockState) ([]ast.Stmt, bool)) bool {
	var merged *lockState
	for _, c := range clauses {
		cst := st.clone()
		stmts, term := body(c, cst)
		if !term {
			term = w.walkStmts(stmts, cst)
		}
		if term {
			continue
		}
		if merged == nil {
			merged = cst
		} else {
			merged = mergeMin(merged, cst)
		}
	}
	if merged == nil {
		return false // keep entry state: e.g. a select whose cases all return
	}
	*st = *merged
	return false
}

func (w *lockWalker) mergeCaseClauses(clauses []ast.Stmt, st *lockState) {
	hasDefault := false
	for _, c := range clauses {
		if cc, ok := c.(*ast.CaseClause); ok && cc.List == nil {
			hasDefault = true
		}
	}
	entry := st.clone()
	w.mergeClauses(clauses, st, func(c ast.Stmt, cst *lockState) ([]ast.Stmt, bool) {
		cc := c.(*ast.CaseClause)
		for _, e := range cc.List {
			w.scanExpr(e, cst)
		}
		return cc.Body, false
	})
	if !hasDefault {
		// No case may match: the fall-through path keeps the entry state.
		*st = *mergeMin(st, entry)
	}
}

// scanExpr inspects an expression in evaluation context: lock operations,
// channel receives, and blocking calls. Function literal bodies are skipped —
// they execute later, on their own path.
func (w *lockWalker) scanExpr(e ast.Expr, st *lockState) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				w.blocking(n.Pos(), "channel receive", st)
			}
		case *ast.CallExpr:
			w.handleCall(n, st)
		}
		return true
	})
}

func (w *lockWalker) handleCall(call *ast.CallExpr, st *lockState) {
	if key, op, ok := w.mutexOp(call); ok {
		readKey := key + " (read)"
		switch op {
		case "Lock":
			if st.held[key] > 0 {
				w.pass.Reportf(call.Pos(), "%s locked again while already held on this path; self-deadlock", key)
			} else if st.held[readKey] > 0 {
				w.pass.Reportf(call.Pos(), "%s write-locked while read lock is held on this path; upgrade self-deadlocks", key)
			}
			st.held[key]++
		case "RLock":
			if st.held[key] > 0 {
				w.pass.Reportf(call.Pos(), "%s read-locked while write lock is held on this path; self-deadlock", key)
			}
			st.held[readKey]++
		case "Unlock":
			if st.held[key] > 0 {
				st.held[key]--
			}
		case "RUnlock":
			if st.held[readKey] > 0 {
				st.held[readKey]--
			}
		}
		return
	}
	if what, ok := w.blockingCall(call); ok {
		w.blocking(call.Pos(), what, st)
	}
}

// deferRelease accounts defer-scheduled unlocks: `defer mu.Unlock()` and the
// `defer func() { ...; mu.Unlock() }()` wrapper form.
func (w *lockWalker) deferRelease(call *ast.CallExpr, st *lockState) {
	if key, op, ok := w.mutexOp(call); ok && (op == "Unlock" || op == "RUnlock") {
		if op == "RUnlock" {
			key += " (read)"
		}
		st.deferred[key]++
		return
	}
	if lit, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
		ast.Inspect(lit.Body, func(n ast.Node) bool {
			if inner, ok := n.(*ast.CallExpr); ok {
				if key, op, ok := w.mutexOp(inner); ok && (op == "Unlock" || op == "RUnlock") {
					if op == "RUnlock" {
						key += " (read)"
					}
					st.deferred[key]++
				}
			}
			return true
		})
	}
}

// checkRelease reports every key that is held past its deferred releases at
// a function exit — but only for keys the body releases non-deferred
// somewhere (w.releases): a pure lock-helper hands the release to its
// caller by design.
func (w *lockWalker) checkRelease(pos token.Pos, st *lockState, where string) {
	var leaked []string
	for k, v := range st.held {
		base := k
		if len(k) > 7 && k[len(k)-7:] == " (read)" {
			base = k[:len(k)-7]
		}
		if v > st.deferred[k] && w.releases[base] {
			leaked = append(leaked, k)
		}
	}
	sort.Strings(leaked)
	for _, k := range leaked {
		w.pass.Reportf(pos, "%s is still held %s; unlock before returning or defer the unlock", k, where)
	}
}

func (w *lockWalker) blocking(pos token.Pos, what string, st *lockState) {
	if k, ok := st.anyHeld(); ok {
		w.pass.Reportf(pos, "%s while %s is held; blocking inside a critical section stalls every other acquirer", what, k)
	}
}

// mutexOp matches calls of Lock/Unlock/RLock/RUnlock on a sync.Mutex or
// sync.RWMutex (directly or via pointer) and returns the rendered receiver
// expression as the lock key.
func (w *lockWalker) mutexOp(call *ast.CallExpr) (key, op string, ok bool) {
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	switch sel.Sel.Name {
	case "Lock", "Unlock", "RLock", "RUnlock":
	default:
		return "", "", false
	}
	// Resolve through the method object rather than the receiver expression's
	// type so embedded mutexes (`type S struct{ sync.Mutex }; s.Lock()`)
	// match too.
	fn, isFn := w.info.Uses[sel.Sel].(*types.Func)
	if !isFn || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", "", false
	}
	switch recvTypeName(fn) {
	case "Mutex", "RWMutex":
		return types.ExprString(sel.X), sel.Sel.Name, true
	}
	return "", "", false
}

// blockingCall classifies calls that park the goroutine: WaitGroup/Cond
// waits and net/http round trips.
func (w *lockWalker) blockingCall(call *ast.CallExpr) (string, bool) {
	fn := calleeFuncIn(w.info, call)
	if fn == nil || fn.Pkg() == nil {
		return "", false
	}
	switch fn.Pkg().Path() {
	case "sync":
		if fn.Name() == "Wait" {
			if recv := recvTypeName(fn); recv == "WaitGroup" || recv == "Cond" {
				return "sync." + recv + ".Wait", true
			}
		}
	case "net/http":
		switch fn.Name() {
		case "Get", "Head", "Post", "PostForm", "Do":
			return "net/http round trip", true
		}
	}
	return "", false
}

// recvTypeName returns the bare name of a method's receiver type, or "".
func recvTypeName(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	t := sig.Recv().Type()
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Name()
	}
	return ""
}
