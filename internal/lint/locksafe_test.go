package lint_test

import (
	"testing"

	"github.com/mia-rt/mia/internal/lint"
	"github.com/mia-rt/mia/internal/lint/linttest"
)

func TestLockSafe(t *testing.T) {
	linttest.Run(t, "testdata/locksafe", []*lint.Analyzer{lint.LockSafe})
}
