package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// coreScopes are the package-path fragments of the analysis core: the code
// whose outputs must be bit-identical across runs, schedulers, and
// warm/cold replays. Fragment matching (rather than exact module paths)
// lets the same analyzer run over the test fixture modules.
var coreScopes = []string{
	"internal/model",
	"internal/sched",
	"internal/arbiter",
	"internal/rta",
	"internal/engine",
	"internal/wire",
	// The shard ring places members on the hash circle; DESIGN §3.9 requires
	// point placement to stay a pure function of the member list, or two
	// routers disagree about ownership mid-failover.
	"internal/shard",
	// The search framework (moves, objectives, scalarized searches, and the
	// NSGA-II front) promises byte-identical Pareto output at any -jobs
	// level and across repeated seeded runs (DESIGN §3.11); a stray
	// wall-clock read, global rand draw, or map-order leak breaks that
	// contract silently.
	"internal/explore",
}

// inAnalysisCore reports whether a package path belongs to the
// deterministic analysis core.
func inAnalysisCore(pkgPath string) bool {
	for _, s := range coreScopes {
		if strings.Contains(pkgPath, s) {
			return true
		}
	}
	return false
}

// seededConstructors are the math/rand entry points that build an explicit,
// caller-seeded generator; everything else at package scope draws from (or
// reseeds) process-global state and is banned in the core.
var seededConstructors = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewZipf":    true,
	"NewPCG":     true, // math/rand/v2
	"NewChaCha8": true,
}

// Determinism guards the paper's offline-analysis contract: results are a
// pure function of (graph, options). The warm-start differential suites
// compare schedules byte-for-byte, so a wall-clock read, an unseeded random
// draw, or a map iteration whose order leaks into output or accumulation
// breaks the guarantee in a way no unit test reliably catches.
var Determinism = &Analyzer{
	Name: "determinism",
	Doc:  "forbid time.Now, unseeded math/rand, and unordered map iteration in the analysis core",
	Run:  runDeterminism,
}

func runDeterminism(p *Pass) error {
	if !inAnalysisCore(p.Pkg.PkgPath) {
		return nil
	}
	p.inspect(func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			fn := p.calleeFunc(n)
			if fn == nil || fn.Pkg() == nil {
				return true
			}
			sig, _ := fn.Type().(*types.Signature)
			pkgLevel := sig != nil && sig.Recv() == nil
			switch fn.Pkg().Path() {
			case "time":
				if fn.Name() == "Now" && pkgLevel {
					p.Reportf(n.Pos(), "time.Now in the analysis core; wall-clock reads make warm and cold runs diverge — measure time in the caller and pass it in")
				}
			case "math/rand", "math/rand/v2":
				if pkgLevel && !seededConstructors[fn.Name()] {
					p.Reportf(n.Pos(), "unseeded %s.%s draws from process-global state; use an explicit rand.New(rand.NewSource(seed)) generator so runs are reproducible", fn.Pkg().Name(), fn.Name())
				}
			}
		case *ast.RangeStmt:
			if n.X == nil {
				return true
			}
			if tv, ok := p.Pkg.Info.Types[n.X]; ok {
				if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
					p.Reportf(n.Pos(), "map iteration order is nondeterministic and this package feeds schedules and serialized output; iterate sorted keys, or justify with //mialint:ignore determinism -- <why order cannot be observed>")
				}
			}
		}
		return true
	})
	return nil
}
