package lint_test

import (
	"testing"

	"github.com/mia-rt/mia/internal/lint"
	"github.com/mia-rt/mia/internal/lint/linttest"
)

func TestHandlerFlow(t *testing.T) {
	linttest.Run(t, "testdata/handlerflow", []*lint.Analyzer{lint.HandlerFlow})
}
