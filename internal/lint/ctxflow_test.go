package lint_test

import (
	"testing"

	"github.com/mia-rt/mia/internal/lint"
	"github.com/mia-rt/mia/internal/lint/linttest"
)

func TestCtxFlow(t *testing.T) {
	linttest.Run(t, "testdata/ctxflow", []*lint.Analyzer{lint.CtxFlow})
}
