package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer is one named check. Run inspects a single type-checked package
// through its Pass and reports findings with Pass.Reportf; the driver owns
// suppression, ordering, and aggregation.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass) error
}

// A Diagnostic is one finding, resolved to a file position.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// A Pass carries one analyzer's view of one package.
type Pass struct {
	Analyzer *Analyzer
	Pkg      *Package

	report func(token.Pos, string)
}

// Reportf records a diagnostic at pos. The driver drops it silently when a
// //mialint:ignore directive covers the position for this analyzer.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(pos, fmt.Sprintf(format, args...))
}

// directiveAnalyzer is the pseudo-analyzer name under which malformed
// //mialint:ignore directives are reported. It is not suppressible.
const directiveAnalyzer = "mialint"

// ignoreDirective is one parsed //mialint:ignore comment.
type ignoreDirective struct {
	file      string
	line      int
	analyzers []string // empty means the directive was malformed
	used      bool
}

// covers reports whether the directive suppresses analyzer a at the given
// position: same file, on the directive's line or the line directly below
// (the standalone-comment-above-the-construct form).
func (ig *ignoreDirective) covers(analyzer string, pos token.Position) bool {
	if pos.Filename != ig.file || (pos.Line != ig.line && pos.Line != ig.line+1) {
		return false
	}
	for _, a := range ig.analyzers {
		if a == analyzer {
			return true
		}
	}
	return false
}

// parseIgnores scans a package's comments for //mialint:ignore directives.
// Malformed directives (no analyzer list, or no " -- reason") are returned
// as diagnostics: a suppression that does not document its justification is
// itself a violation, which is what makes the escape hatch auditable.
func parseIgnores(pkg *Package, known map[string]bool) (igs []*ignoreDirective, malformed []Diagnostic) {
	const prefix = "//mialint:ignore"
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, prefix) {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				rest := strings.TrimPrefix(c.Text, prefix)
				if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
					continue // e.g. //mialint:ignoreXYZ — not our directive
				}
				names, reason, ok := strings.Cut(rest, "--")
				reason = strings.TrimSpace(reason)
				var list []string
				for _, n := range strings.FieldsFunc(names, func(r rune) bool { return r == ',' || r == ' ' || r == '\t' }) {
					list = append(list, n)
				}
				switch {
				case !ok || reason == "":
					malformed = append(malformed, Diagnostic{
						Pos:      pos,
						Analyzer: directiveAnalyzer,
						Message:  "//mialint:ignore requires a reason: //mialint:ignore <analyzer> -- <why the invariant holds anyway>",
					})
				case len(list) == 0:
					malformed = append(malformed, Diagnostic{
						Pos:      pos,
						Analyzer: directiveAnalyzer,
						Message:  "//mialint:ignore names no analyzer to suppress",
					})
				default:
					for _, n := range list {
						if !known[n] {
							malformed = append(malformed, Diagnostic{
								Pos:      pos,
								Analyzer: directiveAnalyzer,
								Message:  fmt.Sprintf("//mialint:ignore names unknown analyzer %q", n),
							})
						}
					}
					igs = append(igs, &ignoreDirective{file: pos.Filename, line: pos.Line, analyzers: list})
				}
			}
		}
	}
	return igs, malformed
}

// Run applies every analyzer to every package and returns the surviving
// diagnostics sorted by position. Unused //mialint:ignore directives are
// reported too: a suppression that no longer suppresses anything is stale
// documentation and must be deleted rather than accumulate.
func Run(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	known := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		known[a.Name] = true
	}
	var diags []Diagnostic
	for _, pkg := range pkgs {
		igs, malformed := parseIgnores(pkg, known)
		diags = append(diags, malformed...)
		for _, a := range analyzers {
			pass := &Pass{Analyzer: a, Pkg: pkg}
			pass.report = func(pos token.Pos, msg string) {
				p := pkg.Fset.Position(pos)
				for _, ig := range igs {
					if ig.covers(a.Name, p) {
						ig.used = true
						return
					}
				}
				diags = append(diags, Diagnostic{Pos: p, Analyzer: a.Name, Message: msg})
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("lint: %s on %s: %v", a.Name, pkg.PkgPath, err)
			}
		}
		for _, ig := range igs {
			if !ig.used && allKnown(ig.analyzers, known) {
				diags = append(diags, Diagnostic{
					Pos:      token.Position{Filename: ig.file, Line: ig.line, Column: 1},
					Analyzer: directiveAnalyzer,
					Message:  fmt.Sprintf("//mialint:ignore %s suppresses nothing; delete it", strings.Join(ig.analyzers, ",")),
				})
			}
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags, nil
}

// allKnown reports whether every named analyzer is part of this run; an
// ignore for an analyzer that was filtered out of the run is not "unused".
func allKnown(names []string, known map[string]bool) bool {
	for _, n := range names {
		if !known[n] {
			return false
		}
	}
	return true
}

// inspect walks every file of the pass's package in source order.
func (p *Pass) inspect(fn func(ast.Node) bool) {
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, fn)
	}
}

// calleeFunc resolves a call expression to the *types.Func it invokes, or
// nil for builtins, conversions, and calls of function-typed values.
func (p *Pass) calleeFunc(call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		if obj, ok := p.Pkg.Info.Uses[fun.Sel].(*types.Func); ok {
			return obj
		}
	case *ast.Ident:
		if obj, ok := p.Pkg.Info.Uses[fun].(*types.Func); ok {
			return obj
		}
	}
	return nil
}
