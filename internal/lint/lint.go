package lint

import (
	"context"
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
	"sync"

	"github.com/mia-rt/mia/internal/pool"
)

// An Analyzer is one named check. Run inspects a single type-checked package
// through its Pass and reports findings with Pass.Reportf; the driver owns
// suppression, ordering, and aggregation.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass) error
}

// A Diagnostic is one finding, resolved to a file position.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// A Pass carries one analyzer's view of one package. Graph is the module-wide
// call graph, shared read-only by every pass, for the interprocedural
// analyzers (transitive hotpathalloc, goroleak, handlerflow summaries).
type Pass struct {
	Analyzer *Analyzer
	Pkg      *Package
	Graph    *CallGraph

	report   func(token.Pos, string)
	suppress func(token.Pos) bool
}

// Reportf records a diagnostic at pos. The driver drops it silently when a
// //mialint:ignore directive covers the position for this analyzer.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(pos, fmt.Sprintf(format, args...))
}

// Suppressed reports whether a //mialint:ignore directive for this analyzer
// covers pos, marking the directive used. Interprocedural analyzers call it
// for positions in *other* packages (an allocating construct in a callee,
// say) whose diagnostic will be reported at a call site elsewhere: the
// justification belongs next to the construct, and must still count as used.
func (p *Pass) Suppressed(pos token.Pos) bool {
	return p.suppress(pos)
}

// directiveAnalyzer is the pseudo-analyzer name under which malformed
// //mialint:ignore directives are reported. It is not suppressible.
const directiveAnalyzer = "mialint"

// ignoreDirective is one parsed //mialint:ignore comment.
type ignoreDirective struct {
	file      string
	line      int
	analyzers []string // empty means the directive was malformed
	used      bool
}

// covers reports whether the directive suppresses analyzer a at the given
// position: same file, on the directive's line or the line directly below
// (the standalone-comment-above-the-construct form).
func (ig *ignoreDirective) covers(analyzer string, pos token.Position) bool {
	if pos.Filename != ig.file || (pos.Line != ig.line && pos.Line != ig.line+1) {
		return false
	}
	for _, a := range ig.analyzers {
		if a == analyzer {
			return true
		}
	}
	return false
}

// directiveTable holds every package's parsed ignore directives for one run.
// The mutex makes the used-marking safe under the parallel driver; marking is
// idempotent and every package is always analyzed, so the final used set —
// and therefore the stale-directive diagnostics — is identical at any job
// count.
type directiveTable struct {
	mu     sync.Mutex
	byFile map[string][]*ignoreDirective
}

// suppress reports whether any directive covers (analyzer, pos), marking the
// first match used.
func (t *directiveTable) suppress(analyzer string, pos token.Position) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, ig := range t.byFile[pos.Filename] {
		if ig.covers(analyzer, pos) {
			ig.used = true
			return true
		}
	}
	return false
}

// stale returns a diagnostic for every directive that suppressed nothing.
func (t *directiveTable) stale(known map[string]bool) []Diagnostic {
	t.mu.Lock()
	defer t.mu.Unlock()
	var diags []Diagnostic
	for _, igs := range t.byFile {
		for _, ig := range igs {
			if !ig.used && allKnown(ig.analyzers, known) {
				diags = append(diags, Diagnostic{
					Pos:      token.Position{Filename: ig.file, Line: ig.line, Column: 1},
					Analyzer: directiveAnalyzer,
					Message:  fmt.Sprintf("//mialint:ignore %s suppresses nothing; delete it", strings.Join(ig.analyzers, ",")),
				})
			}
		}
	}
	return diags
}

// parseIgnores scans a package's comments for //mialint:ignore directives.
// Malformed directives (no analyzer list, or no " -- reason") are returned
// as diagnostics: a suppression that does not document its justification is
// itself a violation, which is what makes the escape hatch auditable.
func parseIgnores(pkg *Package, known map[string]bool) (igs []*ignoreDirective, malformed []Diagnostic) {
	const prefix = "//mialint:ignore"
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, prefix) {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				rest := strings.TrimPrefix(c.Text, prefix)
				if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
					continue // e.g. //mialint:ignoreXYZ — not our directive
				}
				names, reason, ok := strings.Cut(rest, "--")
				reason = strings.TrimSpace(reason)
				var list []string
				for _, n := range strings.FieldsFunc(names, func(r rune) bool { return r == ',' || r == ' ' || r == '\t' }) {
					list = append(list, n)
				}
				switch {
				case !ok || reason == "":
					malformed = append(malformed, Diagnostic{
						Pos:      pos,
						Analyzer: directiveAnalyzer,
						Message:  "//mialint:ignore requires a reason: //mialint:ignore <analyzer> -- <why the invariant holds anyway>",
					})
				case len(list) == 0:
					malformed = append(malformed, Diagnostic{
						Pos:      pos,
						Analyzer: directiveAnalyzer,
						Message:  "//mialint:ignore names no analyzer to suppress",
					})
				default:
					for _, n := range list {
						if !known[n] {
							malformed = append(malformed, Diagnostic{
								Pos:      pos,
								Analyzer: directiveAnalyzer,
								Message:  fmt.Sprintf("//mialint:ignore names unknown analyzer %q", n),
							})
						}
					}
					igs = append(igs, &ignoreDirective{file: pos.Filename, line: pos.Line, analyzers: list})
				}
			}
		}
	}
	return igs, malformed
}

// Run applies every analyzer to every package sequentially and returns the
// surviving diagnostics sorted by position. Unused //mialint:ignore
// directives are reported too: a suppression that no longer suppresses
// anything is stale documentation and must be deleted rather than accumulate.
func Run(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	run := newRunState(pkgs, analyzers)
	perPkg := make([][]Diagnostic, len(pkgs))
	for i := range pkgs {
		diags, err := run.analyzePackage(i)
		if err != nil {
			return nil, err
		}
		perPkg[i] = diags
	}
	return run.finish(perPkg), nil
}

// RunParallel is Run with per-package analysis fanned out over a worker pool
// (jobs <= 1 degrades to the sequential loop inside pool.Map). Output is
// byte-identical at any job count: packages are analyzed independently, the
// per-package diagnostic slices are merged in package order, and the final
// sort imposes a total order — worker scheduling can reorder nothing the
// caller can observe.
func RunParallel(ctx context.Context, jobs int, pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	run := newRunState(pkgs, analyzers)
	perPkg, err := pool.Map(ctx, jobs, len(pkgs), func(_ context.Context, i int) ([]Diagnostic, error) {
		return run.analyzePackage(i)
	})
	if err != nil {
		return nil, err
	}
	return run.finish(perPkg), nil
}

// runState is the shared, read-mostly state of one lint run: the loaded
// packages, the module call graph, and the directive table (the one mutable
// structure, internally locked).
type runState struct {
	pkgs      []*Package
	analyzers []*Analyzer
	known     map[string]bool
	graph     *CallGraph
	table     *directiveTable
	malformed []Diagnostic
}

func newRunState(pkgs []*Package, analyzers []*Analyzer) *runState {
	run := &runState{
		pkgs:      pkgs,
		analyzers: analyzers,
		known:     make(map[string]bool, len(analyzers)),
		table:     &directiveTable{byFile: make(map[string][]*ignoreDirective)},
	}
	for _, a := range analyzers {
		run.known[a.Name] = true
	}
	for _, pkg := range pkgs {
		igs, malformed := parseIgnores(pkg, run.known)
		run.malformed = append(run.malformed, malformed...)
		for _, ig := range igs {
			run.table.byFile[ig.file] = append(run.table.byFile[ig.file], ig)
		}
	}
	run.graph = BuildCallGraph(pkgs)
	return run
}

// analyzePackage runs every analyzer over one package and returns its
// diagnostics. Safe to call concurrently for distinct packages: analyzers
// only read the type-checked packages and the call graph, and the directive
// table locks internally.
func (run *runState) analyzePackage(i int) ([]Diagnostic, error) {
	pkg := run.pkgs[i]
	var diags []Diagnostic
	for _, a := range run.analyzers {
		pass := &Pass{Analyzer: a, Pkg: pkg, Graph: run.graph}
		pass.suppress = func(pos token.Pos) bool {
			return run.table.suppress(a.Name, pkg.Fset.Position(pos))
		}
		pass.report = func(pos token.Pos, msg string) {
			p := pkg.Fset.Position(pos)
			if run.table.suppress(a.Name, p) {
				return
			}
			diags = append(diags, Diagnostic{Pos: p, Analyzer: a.Name, Message: msg})
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("lint: %s on %s: %v", a.Name, pkg.PkgPath, err)
		}
	}
	return diags, nil
}

// finish merges the per-package diagnostics in package order, appends the
// malformed- and stale-directive reports, and sorts everything into the total
// output order.
func (run *runState) finish(perPkg [][]Diagnostic) []Diagnostic {
	var diags []Diagnostic
	diags = append(diags, run.malformed...)
	for _, d := range perPkg {
		diags = append(diags, d...)
	}
	diags = append(diags, run.table.stale(run.known)...)
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
	return diags
}

// allKnown reports whether every named analyzer is part of this run; an
// ignore for an analyzer that was filtered out of the run is not "unused".
func allKnown(names []string, known map[string]bool) bool {
	for _, n := range names {
		if !known[n] {
			return false
		}
	}
	return true
}

// inspect walks every file of the pass's package in source order.
func (p *Pass) inspect(fn func(ast.Node) bool) {
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, fn)
	}
}

// calleeFunc resolves a call expression to the *types.Func it invokes, or
// nil for builtins, conversions, and calls of function-typed values.
func (p *Pass) calleeFunc(call *ast.CallExpr) *types.Func {
	return calleeFuncIn(p.Pkg.Info, call)
}
