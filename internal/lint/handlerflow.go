package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// handlerFlowScopes are the package-path fragments whose HTTP handlers must
// write exactly one status. Fragment matching (not exact paths) lets the
// fixture module reproduce the layout under its own module path.
var handlerFlowScopes = []string{"internal/server", "internal/shard"}

// HandlerFlow checks that every HTTP handler in the serving tier writes
// exactly one response status on every path. Zero writes leave the client
// with net/http's silent implicit 200 on an empty body; two writes surface
// only as a runtime "superfluous WriteHeader" log line after the wrong
// status already left the socket. The analysis counts status commits as an
// interval [lo, hi] per path — WriteHeader and the net/http reply helpers
// (Error, NotFound, Redirect, ServeFile, ServeContent) commit explicitly, a
// first body write commits an implicit 200 — and follows calls into module
// helpers and local closures via memoized summaries, so the funnel pattern
// (every handler exits through one writeReply) is understood rather than
// flagged. Reports are definite-only: a second commit is reported when the
// path has certainly committed before (lo >= 1), a missing one when no
// commit can have happened (hi == 0), so merge-heavy handlers stay quiet.
var HandlerFlow = &Analyzer{
	Name: "handlerflow",
	Doc:  "HTTP handlers in the serving tier must write exactly one response status per path",
	Run:  runHandlerFlow,
}

func runHandlerFlow(p *Pass) error {
	inScope := false
	for _, s := range handlerFlowScopes {
		if strings.Contains(p.Pkg.PkgPath, s) {
			inScope = true
		}
	}
	if !inScope {
		return nil
	}
	c := &hfChecker{
		pass:       p,
		summaries:  make(map[*types.Func]hfSummary),
		inProgress: make(map[*types.Func]bool),
	}
	for _, f := range p.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if isHandlerSig(p.Pkg.Info, fd.Type) {
				c.checkHandler(p.Pkg, fd.Body)
				continue
			}
			// Handler literals registered inline: mux.HandleFunc("/x",
			// func(w http.ResponseWriter, r *http.Request) { ... })
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				lit, ok := n.(*ast.FuncLit)
				if ok && isHandlerSig(p.Pkg.Info, lit.Type) {
					c.checkHandler(p.Pkg, lit.Body)
					return false
				}
				return true
			})
		}
	}
	return nil
}

// isHandlerSig matches the http.HandlerFunc shape:
// func(http.ResponseWriter, *http.Request).
func isHandlerSig(info *types.Info, ft *ast.FuncType) bool {
	if ft.Params == nil || ft.Params.NumFields() != 2 {
		return false
	}
	var flat []ast.Expr
	for _, f := range ft.Params.List {
		n := len(f.Names)
		if n == 0 {
			n = 1
		}
		for i := 0; i < n; i++ {
			flat = append(flat, f.Type)
		}
	}
	if len(flat) != 2 {
		return false
	}
	if !isResponseWriter(info.TypeOf(flat[0])) {
		return false
	}
	ptr, ok := info.TypeOf(flat[1]).(*types.Pointer)
	if !ok {
		return false
	}
	return isNetHTTPNamed(ptr.Elem(), "Request")
}

func isResponseWriter(t types.Type) bool {
	return isNetHTTPNamed(t, "ResponseWriter")
}

func isNetHTTPNamed(t types.Type, name string) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "net/http" && obj.Name() == name
}

// hfSummary is the status-commit interval of one function: across all its
// exit paths, it commits at least lo and at most hi statuses to the response
// writers it can reach.
type hfSummary struct{ lo, hi int }

type hfChecker struct {
	pass       *Pass
	summaries  map[*types.Func]hfSummary
	inProgress map[*types.Func]bool
}

// checkHandler runs the interval walk over one handler body with reporting
// on.
func (c *hfChecker) checkHandler(pkg *Package, body *ast.BlockStmt) {
	w := &hfWalker{c: c, pkg: pkg, report: true, locals: map[types.Object]*ast.FuncLit{}}
	w.bindLocalClosures(body)
	st := &hfState{}
	if terminated := w.walkStmts(body.List, st); !terminated {
		w.exit(body.Rbrace, st)
	}
}

// summarize computes (memoized, cycle-safe) the commit interval of a module
// function. Recursion falls back to {0,0} — under-counting a cycle can at
// worst silence a report, never invent one.
func (c *hfChecker) summarize(fn *types.Func) hfSummary {
	if s, ok := c.summaries[fn]; ok {
		return s
	}
	if c.inProgress[fn] {
		return hfSummary{}
	}
	node := c.pass.Graph.Node(fn)
	if node == nil {
		return hfSummary{}
	}
	c.inProgress[fn] = true
	w := &hfWalker{c: c, pkg: node.Pkg, locals: map[types.Object]*ast.FuncLit{}}
	sm := w.run(node.Decl.Body)
	delete(c.inProgress, fn)
	c.summaries[fn] = sm
	return sm
}

// summarizeLit computes the commit interval of a local closure body.
func (c *hfChecker) summarizeLit(pkg *Package, lit *ast.FuncLit) hfSummary {
	w := &hfWalker{c: c, pkg: pkg, locals: map[types.Object]*ast.FuncLit{}}
	return w.run(lit.Body)
}

// hfState is the per-path interval of committed statuses, capped at 2 (past
// two, more writes add no information).
type hfState struct{ lo, hi int }

func cap2(n int) int {
	if n > 2 {
		return 2
	}
	return n
}

func (s *hfState) clone() *hfState { c := *s; return &c }

func mergeHF(a, b *hfState) *hfState {
	lo := a.lo
	if b.lo < lo {
		lo = b.lo
	}
	hi := a.hi
	if b.hi > hi {
		hi = b.hi
	}
	return &hfState{lo: lo, hi: hi}
}

type hfWalker struct {
	c      *hfChecker
	pkg    *Package
	report bool
	locals map[types.Object]*ast.FuncLit
	exits  []hfState
}

// run walks a body reporting nothing and returns its merged exit interval.
func (w *hfWalker) run(body *ast.BlockStmt) hfSummary {
	w.bindLocalClosures(body)
	st := &hfState{}
	if terminated := w.walkStmts(body.List, st); !terminated {
		w.exits = append(w.exits, *st)
	}
	if len(w.exits) == 0 {
		return hfSummary{}
	}
	sm := hfSummary{lo: w.exits[0].lo, hi: w.exits[0].hi}
	for _, e := range w.exits[1:] {
		if e.lo < sm.lo {
			sm.lo = e.lo
		}
		if e.hi > sm.hi {
			sm.hi = e.hi
		}
	}
	return sm
}

// bindLocalClosures records `name := func(...) {...}` bindings so calls of
// name resolve to the literal's summary (the streamBatch writeTrailer
// pattern).
func (w *hfWalker) bindLocalClosures(body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, rhs := range as.Rhs {
			lit, ok := ast.Unparen(rhs).(*ast.FuncLit)
			if !ok {
				continue
			}
			id, ok := as.Lhs[i].(*ast.Ident)
			if !ok {
				continue
			}
			if obj := w.pkg.Info.Defs[id]; obj != nil {
				w.locals[obj] = lit
			} else if obj := w.pkg.Info.Uses[id]; obj != nil {
				w.locals[obj] = lit
			}
		}
		return true
	})
}

// exit records a path leaving the handler and reports the zero-status case.
func (w *hfWalker) exit(pos token.Pos, st *hfState) {
	w.exits = append(w.exits, *st)
	if w.report && st.hi == 0 {
		w.c.pass.Reportf(pos, "handler path writes no response status; every path must reply exactly once")
	}
}

func (w *hfWalker) walkStmts(stmts []ast.Stmt, st *hfState) bool {
	for _, s := range stmts {
		if w.walkStmt(s, st) {
			return true
		}
	}
	return false
}

func (w *hfWalker) walkStmt(s ast.Stmt, st *hfState) bool {
	switch s := s.(type) {
	case *ast.ExprStmt:
		w.scanExpr(s.X, st)
	case *ast.SendStmt:
		w.scanExpr(s.Chan, st)
		w.scanExpr(s.Value, st)
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			w.scanExpr(e, st)
		}
	case *ast.IncDecStmt:
		w.scanExpr(s.X, st)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, e := range vs.Values {
						w.scanExpr(e, st)
					}
				}
			}
		}
	case *ast.DeferStmt:
		// A deferred reply runs on every path from here on; model it as an
		// immediate commit so the funnel `defer writeReply(...)` is seen.
		if lit, ok := ast.Unparen(s.Call.Fun).(*ast.FuncLit); ok {
			sm := w.c.summarizeLit(w.pkg, lit)
			if sm.lo > 0 || sm.hi > 0 {
				w.commit(s.Call.Pos(), "deferred closure", sm, st)
			}
		} else {
			w.scanExpr(s.Call, st)
		}
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			w.scanExpr(e, st)
		}
		w.exit(s.Pos(), st)
		return true
	case *ast.BlockStmt:
		return w.walkStmts(s.List, st)
	case *ast.IfStmt:
		if s.Init != nil {
			w.walkStmt(s.Init, st)
		}
		w.scanExpr(s.Cond, st)
		then := st.clone()
		thenTerm := w.walkStmts(s.Body.List, then)
		els := st.clone()
		elseTerm := false
		if s.Else != nil {
			elseTerm = w.walkStmt(s.Else, els)
		}
		switch {
		case thenTerm && elseTerm:
			return true
		case thenTerm:
			*st = *els
		case elseTerm:
			*st = *then
		default:
			*st = *mergeHF(then, els)
		}
	case *ast.ForStmt:
		if s.Init != nil {
			w.walkStmt(s.Init, st)
		}
		w.scanExpr(s.Cond, st)
		body := st.clone()
		w.walkStmts(s.Body.List, body)
		if s.Post != nil {
			w.walkStmt(s.Post, body)
		}
		*st = *mergeHF(st, body)
	case *ast.RangeStmt:
		w.scanExpr(s.X, st)
		body := st.clone()
		w.walkStmts(s.Body.List, body)
		*st = *mergeHF(st, body)
	case *ast.SelectStmt:
		w.mergeBranches(st, commClauseBodies(s.Body.List), false)
	case *ast.SwitchStmt:
		if s.Init != nil {
			w.walkStmt(s.Init, st)
		}
		w.scanExpr(s.Tag, st)
		bodies, hasDefault := caseClauseBodies(s.Body.List)
		w.mergeBranches(st, bodies, !hasDefault)
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			w.walkStmt(s.Init, st)
		}
		bodies, hasDefault := caseClauseBodies(s.Body.List)
		w.mergeBranches(st, bodies, !hasDefault)
	case *ast.GoStmt:
		for _, a := range s.Call.Args {
			w.scanExpr(a, st)
		}
	case *ast.LabeledStmt:
		return w.walkStmt(s.Stmt, st)
	case *ast.BranchStmt:
		return true
	}
	return false
}

func commClauseBodies(clauses []ast.Stmt) [][]ast.Stmt {
	var bodies [][]ast.Stmt
	for _, c := range clauses {
		if cc, ok := c.(*ast.CommClause); ok {
			bodies = append(bodies, cc.Body)
		}
	}
	return bodies
}

func caseClauseBodies(clauses []ast.Stmt) (bodies [][]ast.Stmt, hasDefault bool) {
	for _, c := range clauses {
		if cc, ok := c.(*ast.CaseClause); ok {
			bodies = append(bodies, cc.Body)
			if cc.List == nil {
				hasDefault = true
			}
		}
	}
	return bodies, hasDefault
}

// mergeBranches clones the state per branch and joins the survivors;
// fallThrough adds the entry state as one more arm (a switch with no
// default).
func (w *hfWalker) mergeBranches(st *hfState, bodies [][]ast.Stmt, fallThrough bool) {
	var merged *hfState
	if fallThrough {
		merged = st.clone()
	}
	for _, b := range bodies {
		bst := st.clone()
		if w.walkStmts(b, bst) {
			continue
		}
		if merged == nil {
			merged = bst
		} else {
			merged = mergeHF(merged, bst)
		}
	}
	if merged != nil {
		*st = *merged
	}
	// merged == nil: every branch returned; keep the entry state for the
	// unreachable-in-practice fall-through.
}

func (w *hfWalker) scanExpr(e ast.Expr, st *hfState) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false // runs later; bound closures are applied at their call sites
		case *ast.CallExpr:
			w.handleCall(n, st)
		}
		return true
	})
}

// statusCommitters are the net/http helpers that write a response status.
var statusCommitters = map[string]bool{
	"Error": true, "NotFound": true, "Redirect": true,
	"ServeFile": true, "ServeContent": true,
}

func (w *hfWalker) handleCall(call *ast.CallExpr, st *hfState) {
	info := w.pkg.Info
	// Direct methods on a ResponseWriter-typed expression (a param or a
	// struct field holding the writer).
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if isResponseWriter(info.TypeOf(sel.X)) {
			switch sel.Sel.Name {
			case "WriteHeader":
				w.commit(call.Pos(), "WriteHeader", hfSummary{1, 1}, st)
				return
			case "Write":
				w.bodyWrite(st)
				return
			}
		}
	}
	// Local closure bound to a variable.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if obj := info.Uses[id]; obj != nil {
			if lit, ok := w.locals[obj]; ok {
				sm := w.c.summarizeLit(w.pkg, lit)
				w.commit(call.Pos(), id.Name, sm, st)
				return
			}
		}
	}
	fn := calleeFuncIn(info, call)
	if fn == nil {
		return
	}
	if fn.Pkg() != nil && fn.Pkg().Path() == "net/http" {
		if statusCommitters[fn.Name()] {
			w.commit(call.Pos(), "http."+fn.Name(), hfSummary{1, 1}, st)
			return
		}
		// MaxBytesReader takes the writer only to flag the connection for
		// closure on overflow; it never writes a status, so it must not
		// trip the conservative writer-argument fallback below.
		if fn.Name() == "MaxBytesReader" {
			return
		}
	}
	// Module helpers: apply their memoized commit interval.
	if node := w.c.pass.Graph.Node(fn); node != nil {
		sm := w.c.summarize(fn)
		if sm.lo > 0 || sm.hi > 0 {
			w.commit(call.Pos(), hotPathFuncLabel(fn), sm, st)
		}
		return
	}
	// External function handed the writer (fmt.Fprintf(w, ...), io.Copy(w,
	// ...), json.NewEncoder(w)...): conservatively a body write.
	for _, a := range call.Args {
		if isResponseWriter(info.TypeOf(a)) {
			w.bodyWrite(st)
			return
		}
	}
}

// commit applies a definite-or-possible status write and reports the
// definite-second-write case.
func (w *hfWalker) commit(pos token.Pos, what string, sm hfSummary, st *hfState) {
	if w.report && sm.lo > 0 && st.lo > 0 {
		w.c.pass.Reportf(pos, "%s writes a second response status on this path; the handler already replied", what)
	}
	st.lo = cap2(st.lo + sm.lo)
	st.hi = cap2(st.hi + sm.hi)
}

// bodyWrite commits the implicit 200 when nothing was written yet.
func (w *hfWalker) bodyWrite(st *hfState) {
	if st.lo < 1 {
		st.lo = 1
	}
	if st.hi < 1 {
		st.hi = 1
	}
}
