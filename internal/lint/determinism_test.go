package lint_test

import (
	"testing"

	"github.com/mia-rt/mia/internal/lint"
	"github.com/mia-rt/mia/internal/lint/linttest"
)

func TestDeterminism(t *testing.T) {
	linttest.Run(t, "testdata/determ", []*lint.Analyzer{lint.Determinism})
}
