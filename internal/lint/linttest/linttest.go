// Package linttest is the golden-diagnostic harness for the mialint
// analyzers — the stdlib stand-in for golang.org/x/tools' analysistest.
// A fixture is a self-contained Go module under testdata whose source lines
// carry expectations:
//
//	x := f() * g() // want boundedinput:"product of model quantities"
//
// Each `name:"regexp"` token demands exactly one diagnostic from analyzer
// name on that line whose message matches the regexp. Run fails the test on
// any unmatched expectation (the analyzer regressed and stopped firing) and
// on any unexpected diagnostic (it started over-firing), so an analyzer's
// diagnostics cannot drift silently in either direction.
package linttest

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"github.com/mia-rt/mia/internal/lint"
)

// wantRe matches one `name:"regexp"` expectation token. The quoted part
// uses Go string-literal escaping so expectations can contain quotes.
var wantRe = regexp.MustCompile(`([a-z]+):("(?:[^"\\]|\\.)*")`)

// expectation is one demanded diagnostic.
type expectation struct {
	file     string
	line     int
	analyzer string
	re       *regexp.Regexp
	matched  bool
}

// Run loads the fixture module at dir, applies the analyzers, and compares
// the resulting diagnostics against the fixture's // want expectations.
func Run(t *testing.T, dir string, analyzers []*lint.Analyzer) {
	t.Helper()
	abs, err := filepath.Abs(dir)
	if err != nil {
		t.Fatalf("linttest: %v", err)
	}
	wants, err := collectWants(abs)
	if err != nil {
		t.Fatalf("linttest: %v", err)
	}
	pkgs, err := lint.Load(abs)
	if err != nil {
		t.Fatalf("linttest: loading fixture %s: %v", dir, err)
	}
	diags, err := lint.Run(pkgs, analyzers)
	if err != nil {
		t.Fatalf("linttest: running analyzers on %s: %v", dir, err)
	}
	for _, d := range diags {
		if !claim(wants, d) {
			t.Errorf("unexpected diagnostic:\n  %s", d)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("missing diagnostic: %s:%d: %s: /%s/", w.file, w.line, w.analyzer, w.re)
		}
	}
}

// claim marks the first unmatched expectation covering d and reports
// whether one existed.
func claim(wants []*expectation, d lint.Diagnostic) bool {
	for _, w := range wants {
		if !w.matched && w.file == d.Pos.Filename && w.line == d.Pos.Line &&
			w.analyzer == d.Analyzer && w.re.MatchString(d.Message) {
			w.matched = true
			return true
		}
	}
	return false
}

// collectWants scans every .go file under dir for // want expectations.
func collectWants(dir string) ([]*expectation, error) {
	var wants []*expectation
	err := filepath.WalkDir(dir, func(path string, de os.DirEntry, err error) error {
		if err != nil || de.IsDir() || !strings.HasSuffix(path, ".go") {
			return err
		}
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		defer f.Close()
		sc := bufio.NewScanner(f)
		for line := 1; sc.Scan(); line++ {
			_, spec, ok := strings.Cut(sc.Text(), "// want ")
			if !ok {
				continue
			}
			ms := wantRe.FindAllStringSubmatch(spec, -1)
			if len(ms) == 0 {
				return fmt.Errorf("%s:%d: malformed // want comment %q", path, line, spec)
			}
			for _, m := range ms {
				pat, err := strconv.Unquote(m[2])
				if err != nil {
					return fmt.Errorf("%s:%d: bad want pattern %s: %v", path, line, m[2], err)
				}
				re, err := regexp.Compile(pat)
				if err != nil {
					return fmt.Errorf("%s:%d: bad want regexp: %v", path, line, err)
				}
				wants = append(wants, &expectation{file: path, line: line, analyzer: m[1], re: re})
			}
		}
		return sc.Err()
	})
	return wants, err
}
