// Package lib sits outside the handlerflow scope (no internal/server or
// internal/shard fragment in its path): the same violations draw nothing.
package lib

import "net/http"

func HandleDouble(w http.ResponseWriter, r *http.Request) {
	w.WriteHeader(http.StatusOK)
	w.WriteHeader(http.StatusTeapot)
}

func HandleZero(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		return
	}
	w.WriteHeader(http.StatusOK)
}
