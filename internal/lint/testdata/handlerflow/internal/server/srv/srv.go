// Package srv exercises the handlerflow analyzer inside its scope (the
// package path carries the internal/server fragment): every handler must
// write exactly one response status per path.
package srv

import (
	"io"
	"net/http"
)

// handleMissing forgets to reply on the early-return path.
func handleMissing(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		return // want handlerflow:"handler path writes no response status"
	}
	w.WriteHeader(http.StatusOK)
}

// handleDouble writes two explicit statuses on the same path.
func handleDouble(w http.ResponseWriter, r *http.Request) {
	w.WriteHeader(http.StatusOK)
	w.WriteHeader(http.StatusTeapot) // want handlerflow:"WriteHeader writes a second response status"
}

// handleImplicit commits an implicit 200 with the body write, then tries to
// set a status — the order bug net/http only logs at runtime.
func handleImplicit(w http.ResponseWriter, r *http.Request) {
	w.Write([]byte("hello"))
	w.WriteHeader(http.StatusAccepted) // want handlerflow:"WriteHeader writes a second response status"
}

// reply is the funnel helper: its summary is exactly one commit.
func reply(w http.ResponseWriter, code int, msg string) {
	w.WriteHeader(code)
	w.Write([]byte(msg))
}

// handleFunnel exits through the funnel on every path: clean.
func handleFunnel(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path == "/bad" {
		reply(w, http.StatusBadRequest, "bad request")
		return
	}
	reply(w, http.StatusOK, "ok")
}

// handleDoubleFunnel funnels twice on one path; the helper's summary makes
// the second call a definite second status.
func handleDoubleFunnel(w http.ResponseWriter, r *http.Request) {
	reply(w, http.StatusOK, "ok")
	reply(w, http.StatusOK, "again") // want handlerflow:"srv\\.reply writes a second response status"
}

// handleError mixes the stdlib reply helpers with the funnel: clean.
func handleError(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path == "/missing" {
		http.NotFound(w, r)
		return
	}
	if r.Method == http.MethodPost {
		http.Error(w, "no posts", http.StatusMethodNotAllowed)
		return
	}
	reply(w, http.StatusOK, "ok")
}

// handleClosure binds the writer in a local closure; the closure's summary
// travels to its call sites.
func handleClosure(w http.ResponseWriter, r *http.Request) {
	status := func(code int) {
		w.WriteHeader(code)
	}
	status(http.StatusOK)
	status(http.StatusTeapot) // want handlerflow:"status writes a second response status"
}

// handleMethod exercises the method-handler form.
type api struct{}

func (api) handleZero(w http.ResponseWriter, r *http.Request) {
	if r.Method == http.MethodDelete {
		return // want handlerflow:"handler path writes no response status"
	}
	w.WriteHeader(http.StatusOK)
}

// register exercises the inline-literal handler form.
func register(mux *http.ServeMux) {
	mux.HandleFunc("/ping", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Query().Get("q") == "" {
			return // want handlerflow:"handler path writes no response status"
		}
		w.WriteHeader(http.StatusNoContent)
	})
}

// handleMaybe stays quiet by design: after the merge the write count is
// [0,1], so the final funnel call is only *possibly* a second status, and
// the analyzer reports definite violations only.
func handleMaybe(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path == "/eager" {
		w.WriteHeader(http.StatusOK)
	}
	reply(w, http.StatusOK, "done")
}

// handleLimited pins the MaxBytesReader refinement: wrapping the body hands
// the writer over without writing a status, so the error-path reply is the
// first (and only) commit. Clean.
func handleLimited(w http.ResponseWriter, r *http.Request) {
	if _, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 64)); err != nil {
		http.Error(w, "request body too large", http.StatusRequestEntityTooLarge)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// handleJustified demonstrates the escape hatch.
func handleJustified(w http.ResponseWriter, r *http.Request) {
	w.WriteHeader(http.StatusOK)
	//mialint:ignore handlerflow -- probe endpoint: the duplicate write exercises the client's superfluous-header tolerance
	w.WriteHeader(http.StatusTeapot)
}
