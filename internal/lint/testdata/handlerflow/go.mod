module example.com/hflow

go 1.22
