module example.com/determ

go 1.22
