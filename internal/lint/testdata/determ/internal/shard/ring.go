// Package shard pins the determinism analyzer's scope extension: ring
// construction must stay a pure function of the member list (DESIGN §3.9),
// so the analysis-core rules apply here too.
package shard

import "time"

// PlacePoints must not salt placement with the wall clock.
func PlacePoints(members []string) int64 {
	return int64(len(members)) + time.Now().UnixNano() // want determinism:"time.Now in the analysis core"
}

// SumWeights must not accumulate in map order.
func SumWeights(w map[string]int) int {
	n := 0
	for _, v := range w { // want determinism:"map iteration order is nondeterministic"
		n += v
	}
	return n
}

// Jittered documents the one sanctioned randomness: jitter that never
// reaches placement or results.
func Jittered(seed int64) int64 {
	//mialint:ignore determinism -- jitter only; never feeds ring placement
	return seed + time.Now().UnixNano()
}
