// Package gen is outside the analysis core: the determinism analyzer does
// not apply, so the same constructs draw no diagnostics here.
package gen

import "time"

// Stamp may read the wall clock: generators and harnesses are allowed to.
func Stamp() int64 { return time.Now().UnixNano() }

// Count may range a map: nothing in this package feeds the schedulers.
func Count(m map[string]int) int {
	n := 0
	for range m {
		n++
	}
	return n
}
