// Package sched is a determinism-scoped fixture: its import path contains
// internal/sched, so the determinism analyzer applies in full.
package sched

import (
	"math/rand"
	"sort"
	"time"
)

// WallClock reads the wall clock inside the analysis core.
func WallClock() int64 {
	return time.Now().UnixNano() // want determinism:"time.Now in the analysis core"
}

// GlobalRand draws from the process-global generator.
func GlobalRand() int {
	return rand.Intn(10) // want determinism:"unseeded rand.Intn"
}

// GlobalShuffle reseeds and shuffles via global state: two violations.
func GlobalShuffle(xs []int) {
	rand.Seed(42)                                                         // want determinism:"unseeded rand.Seed"
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) // want determinism:"unseeded rand.Shuffle"
}

// SeededRand builds an explicit generator: allowed.
func SeededRand(seed int64) int {
	r := rand.New(rand.NewSource(seed))
	return r.Intn(10)
}

// SumWeights accumulates over an unordered map range.
func SumWeights(w map[string]int) int {
	total := 0
	for _, v := range w { // want determinism:"map iteration order is nondeterministic"
		total += v
	}
	return total
}

// SortedKeys collects and sorts before iterating: the slice range after the
// justified collection loop is not flagged.
func SortedKeys(w map[string]int) []string {
	keys := make([]string, 0, len(w))
	//mialint:ignore determinism -- keys are sorted below before any order-sensitive use
	for k := range w {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
