// Package gl exercises the goroleak analyzer: literal goroutine bodies are
// scanned for join evidence (channel send/close, Done calls), named spawn
// targets are resolved through the call graph and their bodies — and their
// callees' bodies — scanned the same way.
package gl

import "sync"

// FireAndForget launches a goroutine nothing ever joins.
func FireAndForget(f func()) {
	go func() { // want goroleak:"goroutine has no visible join"
		f()
	}()
}

// Joined launches a WaitGroup-bracketed worker: allowed.
func Joined(f func()) {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		f()
	}()
	wg.Wait()
}

// Replied launches a goroutine that reports completion on a channel:
// allowed.
func Replied(f func() int) int {
	ch := make(chan int, 1)
	go func() { ch <- f() }()
	return <-ch
}

// Justified documents why its goroutine outlives the call.
func Justified(f func()) {
	//mialint:ignore goroleak -- joined by the process-lifetime supervisor in the caller
	go f()
}

// worker is a named spawn target whose own body carries the join evidence.
type pool struct {
	wg   sync.WaitGroup
	jobs chan int
	done chan struct{}
}

func (p *pool) worker() {
	defer p.wg.Done()
	for range p.jobs {
	}
}

// SpawnNamed resolves the method through the call graph: worker's body has
// the Done call, so no diagnostic — the case the old literal-only heuristic
// forced an ignore on.
func (p *pool) SpawnNamed(n int) {
	for i := 0; i < n; i++ {
		p.wg.Add(1)
		go p.worker()
	}
	p.wg.Wait()
}

// signal closes the done channel, one call down from the spawn target.
func (p *pool) signal() {
	close(p.done)
}

func (p *pool) runThenSignal() {
	for range p.jobs {
	}
	p.signal()
}

// SpawnTransitive finds the join evidence two hops away: runThenSignal →
// signal → close(done).
func (p *pool) SpawnTransitive() {
	go p.runThenSignal()
	<-p.done
}

// leakyLoop has no join evidence anywhere in its closure.
func leakyLoop(ticks []int) {
	for range ticks {
	}
}

// SpawnLeaky spawns a named target whose whole call closure is joinless.
func SpawnLeaky(ticks []int) {
	go leakyLoop(ticks) // want goroleak:"goroutine has no visible join"
}

// SpawnDynamic spawns a function value: nothing to audit, so the analyzer
// demands a justification.
func SpawnDynamic(f func()) {
	go f() // want goroleak:"goroutine has no visible join"
}

// wrapped calls a joining helper from inside the spawned literal: the
// literal body itself has no evidence, its callee does.
func (p *pool) SpawnWrappedLiteral() {
	go func() {
		p.runThenSignal()
	}()
	<-p.done
}
