module example.com/goroleak

go 1.22
