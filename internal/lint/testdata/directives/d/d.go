// Package d exercises the mialint pseudo-analyzer: a malformed or stale
// //mialint:ignore directive is itself a diagnostic, and is never
// suppressible. The want expectations ride inside the directive comments
// because the driver reports at the directive's own line.
package d

// Placeholder exists so the directives have a function to sit in.
func Placeholder() int {
	x := 1
	//mialint:ignore determinism // want mialint:"requires a reason"
	x++
	//mialint:ignore -- just because // want mialint:"names no analyzer to suppress"
	x++
	//mialint:ignore nosuchcheck -- covered elsewhere // want mialint:"unknown analyzer \"nosuchcheck\""
	x++
	//mialint:ignore determinism -- nothing here draws randomness // want mialint:"suppresses nothing; delete it"
	return x
}
