module example.com/directives

go 1.22
