// Package cg exercises every resolution mode of the lint call graph:
// static calls, interface dispatch, method values, function-typed values,
// cross-package edges, and (mutual) recursion.
package cg

import "example.com/cg/sub"

// ---- static calls ----

func A() {
	B()
	sub.Helper() // cross-package static edge
}

func B() {}

// ---- recursion ----

func Rec(n int) {
	if n > 0 {
		Rec(n - 1)
	}
}

func Ping(n int) {
	if n > 0 {
		Pong(n - 1)
	}
}

func Pong(n int) {
	if n > 0 {
		Ping(n - 1)
	}
}

// ---- interface dispatch ----

type Worker interface{ Work() }

type Fast struct{}

func (Fast) Work() {}

type Slow struct{}

func (*Slow) Work() {}

// NotWorker has a Work method with a different shape, so it must not be an
// interface-dispatch candidate.
type NotWorker struct{}

func (NotWorker) Work(n int) {}

func Dispatch(w Worker) {
	w.Work()
}

// ---- dynamic calls: method values and function values ----

func NamedFn() {}

func UseMethodValue(s *Slow) {
	f := s.Work // address-takes (*Slow).Work
	f()
}

func Apply(f func()) {
	f()
}

func CallApply() {
	Apply(NamedFn) // address-takes NamedFn
}
