module example.com/cg

go 1.22
