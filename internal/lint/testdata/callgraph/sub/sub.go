package sub

func Helper() { leaf() }

func leaf() {}
