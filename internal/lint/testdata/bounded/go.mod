module example.com/bounded

go 1.22
