// Package model mirrors the real model package's bounded scalar types: the
// boundedinput analyzer matches quantities by (package name, type name) and
// exempts internal/model itself, where the checked helpers live.
package model

// Cycles counts time in clock cycles.
type Cycles int64

// Accesses counts shared-memory accesses.
type Accesses int64

// MaxInput bounds every externally supplied magnitude.
const MaxInput = 1 << 40

// Scale is a checked helper: internal/model may multiply freely.
func Scale(n Accesses, per Cycles) Cycles {
	return Cycles(n) * per
}
