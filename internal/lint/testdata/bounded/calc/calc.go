// Package calc exercises the boundedinput analyzer outside internal/model.
package calc

import "example.com/bounded/internal/model"

// Raw multiplies two runtime quantities with no bound in sight.
func Raw(a, b model.Cycles) model.Cycles {
	return a * b // want boundedinput:"product of model quantities can overflow int64"
}

// Mixed catches products through conversions as long as one operand keeps
// the model type.
func Mixed(n model.Accesses, per model.Cycles) model.Cycles {
	return model.Cycles(n) * per // want boundedinput:"product of model quantities can overflow int64"
}

// ConstFactor scales by a compile-time constant: bounded by inspection.
func ConstFactor(a model.Cycles) model.Cycles {
	return 2 * a
}

// Checked references model.MaxInput, marking this function as a checked
// helper that enforces its own bound.
func Checked(a, b model.Cycles) (model.Cycles, bool) {
	if a > model.MaxInput || b > model.MaxInput {
		return 0, false
	}
	return a * b, true
}

// Justified uses the escape hatch with the mandatory reason.
func Justified(a, b model.Cycles) model.Cycles {
	//mialint:ignore boundedinput -- both factors are percentages <= 100 by construction
	return a * b
}

// PlainInts multiplies unbounded non-model integers: out of scope.
func PlainInts(a, b int64) int64 {
	return a * b
}
