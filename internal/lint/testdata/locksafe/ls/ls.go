// Package ls exercises the locksafe analyzer: release-on-every-return-path,
// double-lock, and blocking-while-locked, plus the patterns that must stay
// quiet (defer unlock, select with default, lock helpers, branch joins).
package ls

import (
	"net/http"
	"sync"
)

type box struct {
	mu    sync.Mutex
	rw    sync.RWMutex
	wg    sync.WaitGroup
	ch    chan int
	items []int
}

// earlyReturn releases on the happy path but leaks the lock on the error
// path: the classic non-defer early return.
func (b *box) earlyReturn(bad bool) int {
	b.mu.Lock()
	if bad {
		return 0 // want locksafe:"b\\.mu is still held on this return path"
	}
	n := len(b.items)
	b.mu.Unlock()
	return n
}

// fallsOffEnd unlocks on one arm only and then falls off the end.
func (b *box) fallsOffEnd(flush bool) {
	b.mu.Lock()
	if flush {
		b.items = b.items[:0]
		b.mu.Unlock()
		return
	}
	b.items = append(b.items, 0)
} // want locksafe:"b\\.mu is still held when the function returns"

// deferred is the sanctioned shape: every return path is covered.
func (b *box) deferred(bad bool) int {
	b.mu.Lock()
	defer b.mu.Unlock()
	if bad {
		return 0
	}
	return len(b.items)
}

// deferredWrapper covers the defer-closure release form.
func (b *box) deferredWrapper() int {
	b.mu.Lock()
	defer func() {
		b.mu.Unlock()
	}()
	return len(b.items)
}

// doubleLock write-locks twice on the same path.
func (b *box) doubleLock() {
	b.mu.Lock()
	b.mu.Lock() // want locksafe:"b\\.mu locked again while already held on this path"
	b.mu.Unlock()
	b.mu.Unlock()
}

// upgrade read-locks and then write-locks the same RWMutex: self-deadlock.
func (b *box) upgrade() {
	b.rw.RLock()
	b.rw.Lock() // want locksafe:"b\\.rw write-locked while read lock is held"
	b.rw.Unlock()
	b.rw.RUnlock()
}

// branchLock acquires on one arm only; the join must not cry wolf, but the
// return inside the arm must.
func (b *box) branchLock(cond bool) {
	if cond {
		b.mu.Lock()
		if len(b.items) == 0 {
			return // want locksafe:"b\\.mu is still held on this return path"
		}
		b.mu.Unlock()
	}
}

// sendWhileLocked blocks on a channel send inside the critical section.
func (b *box) sendWhileLocked(v int) {
	b.mu.Lock()
	b.ch <- v // want locksafe:"channel send while b\\.mu is held"
	b.mu.Unlock()
}

// recvWhileLocked blocks on a receive inside the critical section.
func (b *box) recvWhileLocked() int {
	b.mu.Lock()
	v := <-b.ch // want locksafe:"channel receive while b\\.mu is held"
	b.mu.Unlock()
	return v
}

// selectWhileLocked has no default clause, so it parks the goroutine.
func (b *box) selectWhileLocked() {
	b.mu.Lock()
	defer b.mu.Unlock()
	select { // want locksafe:"blocking select while b\\.mu is held"
	case v := <-b.ch:
		b.items = append(b.items, v)
	}
}

// trySelect has a default clause: non-blocking, allowed.
func (b *box) trySelect(v int) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	select {
	case b.ch <- v:
		return true
	default:
		return false
	}
}

// rangeWhileLocked drains a channel while holding the lock.
func (b *box) rangeWhileLocked() {
	b.mu.Lock()
	for v := range b.ch { // want locksafe:"range over a channel while b\\.mu is held"
		b.items = append(b.items, v)
	}
	b.mu.Unlock()
}

// waitWhileLocked parks on a WaitGroup inside the critical section.
func (b *box) waitWhileLocked() {
	b.mu.Lock()
	b.wg.Wait() // want locksafe:"sync\\.WaitGroup\\.Wait while b\\.mu is held"
	b.mu.Unlock()
}

// fetchWhileLocked does a network round trip inside the critical section.
func (b *box) fetchWhileLocked(url string) {
	b.mu.Lock()
	defer b.mu.Unlock()
	resp, err := http.Get(url) // want locksafe:"net/http round trip while b\\.mu is held"
	if err == nil {
		resp.Body.Close()
	}
}

// unlockThenWait releases before parking: allowed.
func (b *box) unlockThenWait() {
	b.mu.Lock()
	b.items = b.items[:0]
	b.mu.Unlock()
	b.wg.Wait()
}

// acquire is a lock helper: it locks and hands the release to its caller.
// No release appears in this body, so rule 1 stays quiet by design.
func (b *box) acquire() {
	b.mu.Lock()
}

// release is the counterpart; unlocking without a local lock is not flagged.
func (b *box) release() {
	b.mu.Unlock()
}

// justified demonstrates the escape hatch.
func (b *box) justified() {
	b.mu.Lock()
	//mialint:ignore locksafe -- the send is guaranteed non-blocking: ch is buffered and drained only by this method
	b.ch <- 0
	b.mu.Unlock()
}
