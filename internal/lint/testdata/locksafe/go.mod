module example.com/locksafe

go 1.22
