package hp

import (
	"fmt"

	"example.com/hotpath/helpers"
)

// refill is annotated; the allocation hides one call down in an unannotated
// helper. The diagnostic lands here, at the call site, with the path.
//
//mia:hotpath
func (s *state) refill(n int) {
	s.fill(n) // want hotpathalloc:"call to .*fill reaches a make call at transitive\\.go:\\d+ on the //mia:hotpath \\(path: .*refill -> .*fill\\)"
}

func (s *state) fill(n int) {
	s.buf = make([]int, n)
}

// tick reaches the allocation two calls down; the full chain is printed.
//
//mia:hotpath
func (s *state) tick(n int) {
	s.viaA(n) // want hotpathalloc:"call to .*viaA reaches a fmt\\.Sprintf call at transitive\\.go:\\d+ on the //mia:hotpath \\(path: .*tick -> .*viaA -> .*viaB\\)"
}

func (s *state) viaA(n int) { s.viaB(n) }

func (s *state) viaB(n int) { s.name = fmt.Sprintf("via-%d", n) }

// borrow crosses a package boundary: the helper lives in example.com/hotpath/helpers.
//
//mia:hotpath
func (s *state) borrow(n int) {
	s.buf = helpers.Scratch(n) // want hotpathalloc:"call to helpers\\.Scratch reaches a make call at helpers\\.go:\\d+ on the //mia:hotpath \\(path: .*borrow -> helpers\\.Scratch\\)"
}

// reinit draws no diagnostic: the helper's allocation carries a reasoned
// //mialint:ignore at its own site, which justifies it for every hot-path
// caller.
//
//mia:hotpath
func (s *state) reinit(n int) {
	s.ensure(n)
}

func (s *state) ensure(n int) {
	if s.buf == nil {
		//mialint:ignore hotpathalloc -- init-only branch, runs once per state lifetime
		s.buf = make([]int, n)
	}
}

// outer draws no transitive diagnostic either: grow is itself annotated, so
// it is checked directly (and already reports at its own lines).
//
//mia:hotpath
func (s *state) outer(n int) {
	s.grow(n)
}

// idle exercises cycle safety: spin recurses and never allocates.
//
//mia:hotpath
func (s *state) idle(n int) {
	s.spin(n)
}

func (s *state) spin(n int) {
	if n > 0 {
		s.spin(n - 1)
	}
}
