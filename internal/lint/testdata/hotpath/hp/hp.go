// Package hp exercises the hotpathalloc analyzer: only functions annotated
// //mia:hotpath are checked, and every allocating construct class has a
// positive case here.
package hp

import "fmt"

type item struct{ a, b int }

type sink interface{ accept() }

func (item) accept() {}

type state struct {
	buf   []int
	items []item
	name  string
}

// step is the annotated steady-state function.
//
//mia:hotpath
func (s *state) step(n int) {
	s.name = fmt.Sprintf("step-%d", n) // want hotpathalloc:"fmt.Sprintf in //mia:hotpath function allocates"
	tmp := make([]int, n)              // want hotpathalloc:"make in //mia:hotpath function allocates"
	p := new(item)                     // want hotpathalloc:"new in //mia:hotpath function allocates"
	q := &item{a: n}                   // want hotpathalloc:"&composite literal in //mia:hotpath function escapes"
	pair := []int{n, n}                // want hotpathalloc:"slice literal in //mia:hotpath function allocates"
	idx := map[int]int{n: n}           // want hotpathalloc:"map literal in //mia:hotpath function allocates"
	f := func() int { return n }       // want hotpathalloc:"closure literal in //mia:hotpath function allocates"
	_ = s.name + "!"                   // want hotpathalloc:"string concatenation in //mia:hotpath function allocates"
	_, _, _, _, _, _ = tmp, p, q, pair, idx, f
}

// grow exercises the append forms: assigning back into the source slice is
// the sanctioned reuse idiom, everything else builds a fresh slice.
//
//mia:hotpath
func (s *state) grow(v int) []int {
	s.buf = append(s.buf, v)            // reuse idiom: allowed
	s.buf = append(s.buf[:0], v)        // reset-reuse idiom: allowed
	fresh := append(s.buf, v)           // want hotpathalloc:"append result is not assigned back"
	return append([]int(nil), fresh...) // want hotpathalloc:"append result is not assigned back"
}

// box exercises implicit interface conversions.
//
//mia:hotpath
func (s *state) box(it item) {
	var x sink
	x = it         // want hotpathalloc:"assignment implicitly boxes"
	consume(it)    // want hotpathalloc:"argument implicitly boxes"
	consume(&it)   // pointers are interface-word sized: allowed
	consumeAny(42) // constants: allowed
	_ = x
}

// convert exercises the slice-to-string copy.
//
//mia:hotpath
func (s *state) convert(b []byte) string {
	return string(b) // want hotpathalloc:"string conversion from a slice"
}

// justified demonstrates the escape hatch.
//
//mia:hotpath
func (s *state) justified(n int) {
	//mialint:ignore hotpathalloc -- init-only branch, guarded by the nil check
	s.buf = make([]int, n)
}

// cold is NOT annotated: the same constructs draw no diagnostics.
func (s *state) cold(n int) []int {
	tmp := make([]int, n)
	tmp = append(tmp, n)
	s.name = fmt.Sprintf("cold-%d", n)
	return tmp
}

func consume(v sink)   { v.accept() }
func consumeAny(v any) { _ = v }
