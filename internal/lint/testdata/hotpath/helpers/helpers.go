// Package helpers is the cross-package leg of the transitive hotpathalloc
// fixture: an allocating helper that is perfectly fine in cold code and only
// becomes a violation when a //mia:hotpath function in another package
// reaches it.
package helpers

// Scratch returns a fresh buffer per call.
func Scratch(n int) []int {
	out := make([]int, n)
	return out
}
