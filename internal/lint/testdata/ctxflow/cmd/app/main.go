// Command app is package main: the one place a context root belongs.
package main

import (
	"context"

	"example.com/ctxflow/lib"
)

func main() {
	ctx := context.Background() // roots are legal in main
	if err := lib.Run(ctx, 1); err != nil {
		panic(err)
	}
	go func() {}() // joins are main's own responsibility; not flagged here
}
