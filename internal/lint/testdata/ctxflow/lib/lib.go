// Package lib exercises the ctxflow analyzer's library-package rules:
// context roots are banned, context parameters come first, goroutines need
// a visible join.
package lib

import (
	"context"
	"sync"
)

// Detach invents a root context inside a library.
func Detach() context.Context {
	return context.Background() // want ctxflow:"context.Background in a library package"
}

// Todo does the same with TODO.
func Todo() context.Context {
	return context.TODO() // want ctxflow:"context.TODO in a library package"
}

// Sweep takes its context second.
func Sweep(n int, ctx context.Context) error { // want ctxflow:"Sweep takes context.Context at parameter 1"
	return ctx.Err()
}

// Run takes its context first: allowed.
func Run(ctx context.Context, n int) error {
	return ctx.Err()
}

// FireAndForget launches a goroutine nothing ever joins.
func FireAndForget(f func()) {
	go func() { // want ctxflow:"goroutine has no visible join"
		f()
	}()
}

// Joined launches a WaitGroup-bracketed worker: allowed.
func Joined(f func()) {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		f()
	}()
	wg.Wait()
}

// Replied launches a goroutine that reports completion on a channel:
// allowed.
func Replied(f func() int) int {
	ch := make(chan int, 1)
	go func() { ch <- f() }()
	return <-ch
}

// Justified documents why its goroutine outlives the call.
func Justified(f func()) {
	//mialint:ignore ctxflow -- joined by the process-lifetime supervisor in the caller
	go f()
}
