// Package lib exercises the ctxflow analyzer's library-package rules:
// context roots are banned and context parameters come first (the
// goroutine-join rule moved to the goroleak fixture).
package lib

import "context"

// Detach invents a root context inside a library.
func Detach() context.Context {
	return context.Background() // want ctxflow:"context.Background in a library package"
}

// Todo does the same with TODO.
func Todo() context.Context {
	return context.TODO() // want ctxflow:"context.TODO in a library package"
}

// Sweep takes its context second.
func Sweep(n int, ctx context.Context) error { // want ctxflow:"Sweep takes context.Context at parameter 1"
	return ctx.Err()
}

// Run takes its context first: allowed.
func Run(ctx context.Context, n int) error {
	return ctx.Err()
}
