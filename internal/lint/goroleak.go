package lint

import (
	"go/ast"
	"go/types"
)

// GoRoLeak flags `go` statements whose goroutine is not visibly joined.
// The serving layers assert goroutine counts in tests and drain workers on
// shutdown; a fire-and-forget goroutine defeats both, and leaks by the
// thousands under churn. Join evidence is a channel send, a channel close,
// or a Done() call (WaitGroup/errgroup) — found either directly in the
// spawned body or, through the call graph, anywhere in the module functions
// that body (or a named `go f()` / `go x.m()` target) statically calls.
// That last part is what graduated this check out of ctxflow's literal-only
// heuristic: `go s.worker()` is now audited by reading worker's body
// instead of demanding an ignore at every spawn site.
var GoRoLeak = &Analyzer{
	Name: "goroleak",
	Doc:  "every spawned goroutine must be visibly joined (WaitGroup, channel send/close)",
	Run:  runGoRoLeak,
}

func runGoRoLeak(p *Pass) error {
	c := &grlChecker{pass: p, joins: make(map[*types.Func]joinResult)}
	p.inspect(func(n ast.Node) bool {
		g, ok := n.(*ast.GoStmt)
		if !ok {
			return true
		}
		if !c.joined(g) {
			p.Reportf(g.Pos(), "goroutine has no visible join (no WaitGroup Add/Done bracket, no channel send or close, in the body or its callees); a leak here survives shutdown drains — join it or justify with //mialint:ignore goroleak -- <who waits for it>")
		}
		return true
	})
	return nil
}

type joinResult int

const (
	joinUnknown joinResult = iota
	joinComputing
	joinYes
	joinNo
)

type grlChecker struct {
	pass  *Pass
	joins map[*types.Func]joinResult
}

// joined decides one go statement. Function literals are scanned directly
// (plus their static callees); named targets are resolved and their bodies
// scanned the same way.
func (c *grlChecker) joined(g *ast.GoStmt) bool {
	if lit, ok := ast.Unparen(g.Call.Fun).(*ast.FuncLit); ok {
		if syntacticJoin(c.pass.Pkg, lit.Body) {
			return true
		}
		return c.calleesJoin(c.pass.Pkg, lit.Body)
	}
	fn := c.pass.calleeFunc(g.Call)
	if fn == nil {
		return false // dynamic target: nothing to audit, demand a justification
	}
	return c.fnJoins(fn)
}

// fnJoins reports whether fn's body (or, transitively, a static callee's)
// carries join evidence. Cycles resolve to "no evidence" — under-claiming a
// join can at worst demand one extra justification, never hide a leak.
func (c *grlChecker) fnJoins(fn *types.Func) bool {
	switch c.joins[fn] {
	case joinYes:
		return true
	case joinNo, joinComputing:
		return false
	}
	node := c.pass.Graph.Node(fn)
	if node == nil {
		return false
	}
	c.joins[fn] = joinComputing
	ok := syntacticJoin(node.Pkg, node.Decl.Body) || c.calleesJoin(node.Pkg, node.Decl.Body)
	if ok {
		c.joins[fn] = joinYes
	} else {
		c.joins[fn] = joinNo
	}
	return ok
}

// calleesJoin resolves the static calls inside body and asks each module
// callee for join evidence.
func (c *grlChecker) calleesJoin(pkg *Package, body ast.Node) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if fn := calleeFuncIn(pkg.Info, call); fn != nil && c.fnJoins(fn) {
			found = true
			return false
		}
		return true
	})
	return found
}

// syntacticJoin scans one body for direct join evidence: a channel send, a
// builtin close, or a Done() call.
func syntacticJoin(pkg *Package, body ast.Node) bool {
	joined := false
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SendStmt:
			joined = true
		case *ast.CallExpr:
			switch fun := ast.Unparen(n.Fun).(type) {
			case *ast.Ident:
				if fun.Name == "close" {
					if _, isBuiltinClose := pkg.Info.Uses[fun].(*types.Builtin); isBuiltinClose {
						joined = true
					}
				}
			case *ast.SelectorExpr:
				if fun.Sel.Name == "Done" {
					joined = true
				}
			}
		}
		return !joined
	})
	return joined
}
