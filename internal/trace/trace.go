// Package trace records and exports what the analyses compute: schedule
// tables (CSV), incremental-scheduler event streams (text and JSON lines),
// and reconstructions of the Closed/Alive/Future partition at any cursor
// instant — the snapshot drawn in the paper's Figure 2.
package trace

import (
	"encoding/json"
	"fmt"
	"io"

	"github.com/mia-rt/mia/internal/model"
	"github.com/mia-rt/mia/internal/sched"
)

// Recorder accumulates the incremental scheduler's event stream. Plug its
// Hook into sched.Options.Trace.
type Recorder struct {
	Events []sched.Event
}

// Hook returns the callback to install as sched.Options.Trace.
func (r *Recorder) Hook() func(sched.Event) {
	return func(e sched.Event) { r.Events = append(r.Events, e) }
}

// Partition is the three-way split of tasks relative to a cursor instant:
// the state of the paper's Figure 2.
type Partition struct {
	Time   model.Cycles
	Closed []model.TaskID
	Alive  []model.TaskID
	Future []model.TaskID
}

// PartitionAt replays the recorded events and reconstructs the partition
// immediately *after* the event processing at time t (closings and openings
// at t applied). Tasks never opened are Future.
func (r *Recorder) PartitionAt(g *model.Graph, t model.Cycles) Partition {
	state := make(map[model.TaskID]int) // 0 future, 1 alive, 2 closed
	for _, e := range r.Events {
		if e.Time > t {
			break
		}
		switch e.Kind {
		case sched.EventOpen:
			state[e.Task] = 1
		case sched.EventClose:
			state[e.Task] = 2
		}
	}
	p := Partition{Time: t}
	for i := 0; i < g.NumTasks(); i++ {
		id := model.TaskID(i)
		switch state[id] {
		case 2:
			p.Closed = append(p.Closed, id)
		case 1:
			p.Alive = append(p.Alive, id)
		default:
			p.Future = append(p.Future, id)
		}
	}
	return p
}

// String renders the partition in the style of the paper's running example.
func (p Partition) String() string {
	return fmt.Sprintf("t=%d C=%v A=%v F=%v", p.Time, p.Closed, p.Alive, p.Future)
}

// WriteText dumps the recorded events one per line.
func (r *Recorder) WriteText(w io.Writer) error {
	for _, e := range r.Events {
		if _, err := fmt.Fprintln(w, e.String()); err != nil {
			return err
		}
	}
	return nil
}

// eventJSON is the JSON-lines form of an event.
type eventJSON struct {
	Kind  string       `json:"kind"`
	Time  model.Cycles `json:"t"`
	Task  int          `json:"task,omitempty"`
	Value model.Cycles `json:"value,omitempty"`
}

// WriteJSONL dumps the recorded events as JSON lines.
func (r *Recorder) WriteJSONL(w io.Writer) error {
	enc := json.NewEncoder(w)
	for _, e := range r.Events {
		rec := eventJSON{Kind: e.Kind.String(), Time: e.Time, Value: e.Value}
		if e.Task != model.NoTask {
			rec.Task = int(e.Task)
		} else {
			rec.Task = -1
		}
		if err := enc.Encode(rec); err != nil {
			return err
		}
	}
	return nil
}

// WriteScheduleCSV exports a computed schedule as CSV: one row per task
// with its mapping, window and interference — the machine-readable form of
// the paper's output (Θ, R).
func WriteScheduleCSV(w io.Writer, g *model.Graph, res *sched.Result) error {
	if _, err := fmt.Fprintln(w, "task,name,core,release,wcet,interference,response,finish"); err != nil {
		return err
	}
	for i := 0; i < g.NumTasks(); i++ {
		id := model.TaskID(i)
		t := g.Task(id)
		_, err := fmt.Fprintf(w, "%d,%s,%d,%d,%d,%d,%d,%d\n",
			i, t.Name, t.Core, res.Release[i], t.WCET, res.Interference[i], res.Response[i], res.Finish(id))
		if err != nil {
			return err
		}
	}
	return nil
}
