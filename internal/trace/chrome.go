package trace

import (
	"encoding/json"
	"fmt"
	"io"

	"github.com/mia-rt/mia/internal/model"
	"github.com/mia-rt/mia/internal/sched"
)

// chromeEvent is one entry of the Chrome trace-event format ("Trace Event
// Format", the JSON array flavor), loadable in chrome://tracing and
// Perfetto. Durations use the schedule's cycle count as microseconds, which
// preserves proportions.
type chromeEvent struct {
	Name     string         `json:"name"`
	Phase    string         `json:"ph"`
	Time     model.Cycles   `json:"ts"`
	Duration model.Cycles   `json:"dur,omitempty"`
	PID      int            `json:"pid"`
	TID      int            `json:"tid"`
	Args     map[string]any `json:"args,omitempty"`
}

// WriteChromeTrace exports a schedule in the Chrome trace-event format: one
// "process" for the platform, one "thread" per core, one complete event per
// task spanning its execution window, annotated with WCET and interference.
// Open the output in chrome://tracing or https://ui.perfetto.dev.
func WriteChromeTrace(w io.Writer, g *model.Graph, res *sched.Result) error {
	events := make([]chromeEvent, 0, g.NumTasks()+g.Cores)
	for k := 0; k < g.Cores; k++ {
		events = append(events, chromeEvent{
			Name:  "thread_name",
			Phase: "M",
			PID:   1,
			TID:   k,
			Args:  map[string]any{"name": fmt.Sprintf("PE%d", k)},
		})
	}
	for i := 0; i < g.NumTasks(); i++ {
		id := model.TaskID(i)
		t := g.Task(id)
		events = append(events, chromeEvent{
			Name:     t.Name,
			Phase:    "X",
			Time:     res.Release[i],
			Duration: res.Response[i],
			PID:      1,
			TID:      int(t.Core),
			Args: map[string]any{
				"wcet":         t.WCET,
				"interference": res.Interference[i],
				"demand":       t.TotalDemand(),
			},
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(events)
}
