package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"github.com/mia-rt/mia/internal/gen"
	"github.com/mia-rt/mia/internal/model"
	"github.com/mia-rt/mia/internal/sched"
	"github.com/mia-rt/mia/internal/sched/incremental"
)

func recordFigure2(t *testing.T) (*model.Graph, *Recorder, *sched.Result) {
	t.Helper()
	g := gen.Figure2()
	var rec Recorder
	res, err := incremental.Schedule(g, sched.Options{Trace: rec.Hook()})
	if err != nil {
		t.Fatalf("Schedule: %v", err)
	}
	return g, &rec, res
}

func TestPartitionAtFigure2(t *testing.T) {
	g, rec, _ := recordFigure2(t)
	// The paper's running example: after the event at t=5, C contains n6
	// (and everything finished before), A = {n0, n4, n7, n9}.
	p := rec.PartitionAt(g, 5)
	aliveNames := map[string]bool{}
	for _, id := range p.Alive {
		aliveNames[g.Task(id).Name] = true
	}
	for _, want := range []string{"n0", "n4", "n7", "n9"} {
		if !aliveNames[want] {
			t.Errorf("alive at t=5 missing %s (got %v)", want, p.Alive)
		}
	}
	if len(p.Alive) != 4 {
		t.Errorf("alive = %v, want 4 tasks", p.Alive)
	}
	closedNames := map[string]bool{}
	for _, id := range p.Closed {
		closedNames[g.Task(id).Name] = true
	}
	if !closedNames["n6"] {
		t.Errorf("n6 not closed at t=5: %v", p.Closed)
	}
	if len(p.Closed)+len(p.Alive)+len(p.Future) != g.NumTasks() {
		t.Error("partition does not cover the task set")
	}
	if s := p.String(); !strings.Contains(s, "t=5") {
		t.Errorf("String = %q", s)
	}
}

func TestPartitionBeforeStart(t *testing.T) {
	g, rec, _ := recordFigure2(t)
	p := rec.PartitionAt(g, -1)
	if len(p.Future) != g.NumTasks() {
		t.Errorf("everything must be future before t=0: %+v", p)
	}
}

func TestPartitionAtEnd(t *testing.T) {
	g, rec, res := recordFigure2(t)
	p := rec.PartitionAt(g, res.Makespan)
	if len(p.Closed) != g.NumTasks() {
		t.Errorf("everything must be closed at the makespan: %+v", p)
	}
}

func TestWriteText(t *testing.T) {
	_, rec, _ := recordFigure2(t)
	var buf bytes.Buffer
	if err := rec.WriteText(&buf); err != nil {
		t.Fatalf("WriteText: %v", err)
	}
	out := buf.String()
	for _, want := range []string{"cursor", "open", "close"} {
		if !strings.Contains(out, want) {
			t.Errorf("trace missing %q", want)
		}
	}
}

func TestWriteJSONL(t *testing.T) {
	_, rec, _ := recordFigure2(t)
	var buf bytes.Buffer
	if err := rec.WriteJSONL(&buf); err != nil {
		t.Fatalf("WriteJSONL: %v", err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != len(rec.Events) {
		t.Fatalf("%d lines for %d events", len(lines), len(rec.Events))
	}
	if !strings.Contains(lines[0], `"kind":"cursor"`) {
		t.Errorf("first line = %q", lines[0])
	}
}

func TestWriteScheduleCSV(t *testing.T) {
	g := gen.Figure1()
	res, err := incremental.Schedule(g, sched.Options{})
	if err != nil {
		t.Fatalf("Schedule: %v", err)
	}
	var buf bytes.Buffer
	if err := WriteScheduleCSV(&buf, g, res); err != nil {
		t.Fatalf("WriteScheduleCSV: %v", err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != g.NumTasks()+1 {
		t.Fatalf("%d lines, want header + %d tasks", len(lines), g.NumTasks())
	}
	if !strings.HasPrefix(lines[0], "task,name,core,release") {
		t.Errorf("header = %q", lines[0])
	}
	// n3: release 0, wcet 3, interference 2, response 5, finish 5.
	if !strings.Contains(buf.String(), "3,n3,2,0,3,2,5,5") {
		t.Errorf("n3 row missing:\n%s", buf.String())
	}
}

func TestWriteChromeTrace(t *testing.T) {
	g := gen.Figure1()
	res, err := incremental.Schedule(g, sched.Options{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, g, res); err != nil {
		t.Fatalf("WriteChromeTrace: %v", err)
	}
	var events []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	// 4 thread-name metadata + 5 task events.
	if len(events) != 9 {
		t.Fatalf("%d events, want 9", len(events))
	}
	var taskEvents, metaEvents int
	for _, e := range events {
		switch e["ph"] {
		case "X":
			taskEvents++
			if e["dur"] == nil || e["name"] == "" {
				t.Errorf("bad task event: %v", e)
			}
		case "M":
			metaEvents++
		}
	}
	if taskEvents != 5 || metaEvents != 4 {
		t.Fatalf("events: %d tasks, %d meta", taskEvents, metaEvents)
	}
}
