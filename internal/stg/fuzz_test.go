package stg

import (
	"strings"
	"testing"

	"github.com/mia-rt/mia/internal/model"
)

// FuzzReadSTG checks the STG parser never panics and never aborts on
// allocation (a corrupt task-count header must fail cleanly), and that every
// accepted graph is internally consistent and convertible to a scheduling
// problem.
func FuzzReadSTG(f *testing.F) {
	seeds := []string{
		"3\n0 0 0\n1 5 1 0\n2 0 1 1\n",
		"1\n0 7 0\n",
		"0\n",
		"2\n# comment between lines\n0 1 0\n1 1 1 0\n",
		"4\n0 0 0\n1 10 1 0\n2 20 1 0\n3 0 2 1 2\n# trailing notes\n",
		"2\n0 1 0\n0 1 0\n",      // duplicate id
		"2\n0 1 0\n5 1 0\n",      // id out of range
		"1\n0 1 2 0\n",           // predecessor count mismatch
		"1\n0 -3 0\n",            // negative processing time
		"99999999999999999999\n", // overflowing task count
		"1073741824\n",           // huge but parseable task count
		"1\n0 1099511627777 0\n", // proc time past model.MaxInput
		"1\n0 1099511627776 0\n", // proc time exactly at model.MaxInput
		"",
		"x\n",
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		g, err := Read(strings.NewReader(string(data)))
		if err != nil {
			return // rejection is fine; panics and OOM aborts are not
		}
		if len(g.ProcTimes) != g.Tasks() || len(g.Preds) != g.Tasks() {
			t.Fatalf("inconsistent sizes: %d times, %d pred lists", len(g.ProcTimes), len(g.Preds))
		}
		for id, preds := range g.Preds {
			for _, p := range preds {
				if p < 0 || p >= g.Tasks() {
					t.Fatalf("task %d: accepted out-of-range predecessor %d", id, p)
				}
			}
		}
		for id, proc := range g.ProcTimes {
			if proc < 0 || proc > model.MaxInput {
				t.Fatalf("task %d: accepted out-of-bounds processing time %d", id, proc)
			}
		}
		if _, err := g.ToProblem(4, 4, DefaultSynthesis()); err != nil {
			t.Fatalf("accepted graph fails conversion: %v", err)
		}
	})
}
