package stg

import (
	"bytes"
	"strings"
	"testing"

	"github.com/mia-rt/mia/internal/gen"
	"github.com/mia-rt/mia/internal/mapper"
	"github.com/mia-rt/mia/internal/model"
	"github.com/mia-rt/mia/internal/sched"
	"github.com/mia-rt/mia/internal/sched/incremental"
)

// sample is a 5-task STG: dummy source 0, diamond 1-2-3, dummy sink 4.
const sample = `
5
0 0 0
1 10 1 0
2 20 1 0
3 15 2 1 2
4 0 1 3
# comment trailer
`

func TestRead(t *testing.T) {
	g, err := Read(strings.NewReader(sample))
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if g.Tasks() != 5 {
		t.Fatalf("tasks = %d", g.Tasks())
	}
	if g.ProcTimes[2] != 20 {
		t.Errorf("proc[2] = %d", g.ProcTimes[2])
	}
	if len(g.Preds[3]) != 2 || g.Preds[3][0] != 1 || g.Preds[3][1] != 2 {
		t.Errorf("preds[3] = %v", g.Preds[3])
	}
	if len(g.Preds[0]) != 0 {
		t.Errorf("source has predecessors: %v", g.Preds[0])
	}
}

func TestReadErrors(t *testing.T) {
	cases := map[string]string{
		"empty":          ``,
		"bad count":      `x`,
		"truncated":      "3\n0 1 0\n",
		"short line":     "1\n0 1\n",
		"bad id":         "1\nx 1 0\n",
		"id range":       "1\n7 1 0\n",
		"duplicate":      "2\n0 1 0\n0 1 0\n",
		"bad proc":       "1\n0 -5 0\n",
		"bad npreds":     "1\n0 1 x\n",
		"pred mismatch":  "1\n0 1 2 0\n",
		"pred range":     "2\n0 1 0\n1 1 1 9\n",
		"negative preds": "1\n0 1 -1\n",
		// 2^40+1: finite, parseable, but past the model.MaxInput overflow
		// guard shared with the JSON loader.
		"huge proc": "1\n0 1099511627777 0\n",
	}
	for name, src := range cases {
		t.Run(name, func(t *testing.T) {
			if _, err := Read(strings.NewReader(src)); err == nil {
				t.Fatalf("accepted %q", src)
			}
		})
	}
}

// TestToProblemRejectsBadRanges pins the synthesis-range hardening: inverted,
// negative and overflow-scale ranges are rejected with a diagnostic instead
// of synthesizing access counts that model.Validate later rejects (or worse,
// accepts into overflowing accumulation).
func TestToProblemRejectsBadRanges(t *testing.T) {
	g, err := Read(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string]SynthesisParams{
		"inverted acc":   {AccMin: 10, AccMax: 5, WriteMin: 0, WriteMax: 1},
		"inverted write": {AccMin: 0, AccMax: 1, WriteMin: 10, WriteMax: 5},
		"negative acc":   {AccMin: -5, AccMax: 5, WriteMin: 0, WriteMax: 1},
		"negative write": {AccMin: 0, AccMax: 1, WriteMin: -5, WriteMax: 5},
		"acc overflow":   {AccMin: 0, AccMax: model.MaxInput + 1, WriteMin: 0, WriteMax: 1},
		"write overflow": {AccMin: 0, AccMax: 1, WriteMin: 0, WriteMax: model.MaxInput + 1},
	}
	for name, p := range cases {
		t.Run(name, func(t *testing.T) {
			if _, err := g.ToProblem(4, 4, p); err == nil {
				t.Fatalf("accepted synthesis params %+v", p)
			}
		})
	}
	// The bound itself remains legal.
	ok := SynthesisParams{AccMin: 0, AccMax: model.MaxInput, WriteMin: 0, WriteMax: model.MaxInput, Seed: 1}
	if _, err := g.ToProblem(4, 4, ok); err != nil {
		t.Fatalf("ranges at MaxInput must be accepted: %v", err)
	}
}

func TestToProblemAndSchedule(t *testing.T) {
	g, err := Read(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	prob, err := g.ToProblem(2, 2, DefaultSynthesis())
	if err != nil {
		t.Fatalf("ToProblem: %v", err)
	}
	// Dummies keep zero cost and demand.
	if prob.Specs[0].WCET != 0 || prob.Specs[0].Local != 0 {
		t.Errorf("dummy source = %+v", prob.Specs[0])
	}
	if prob.Specs[1].Local < 250 || prob.Specs[1].Local > 550 {
		t.Errorf("synthesized accesses %d outside paper range", prob.Specs[1].Local)
	}
	mg, err := mapper.Map(prob, mapper.ListScheduling{})
	if err != nil {
		t.Fatalf("Map: %v", err)
	}
	res, err := incremental.Schedule(mg, sched.Options{})
	if err != nil {
		t.Fatalf("Schedule: %v", err)
	}
	if err := sched.Check(mg, sched.Options{}, res); err != nil {
		t.Fatalf("Check: %v", err)
	}
	// Critical path 10||20 then 15: ≥ 35 plus interference.
	if res.Makespan < 35 {
		t.Errorf("makespan = %d", res.Makespan)
	}
}

func TestToProblemDeterministic(t *testing.T) {
	g, err := Read(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	a, err := g.ToProblem(2, 2, DefaultSynthesis())
	if err != nil {
		t.Fatal(err)
	}
	b, err := g.ToProblem(2, 2, DefaultSynthesis())
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Specs {
		if a.Specs[i].Local != b.Specs[i].Local {
			t.Fatal("same seed produced different synthesis")
		}
	}
	if _, err := g.ToProblem(2, 2, SynthesisParams{AccMin: 10, AccMax: 5}); err == nil {
		t.Error("bad ranges accepted")
	}
}

func TestWriteRoundTrip(t *testing.T) {
	orig := gen.Figure1()
	var buf bytes.Buffer
	if err := Write(&buf, orig); err != nil {
		t.Fatalf("Write: %v", err)
	}
	parsed, err := Read(&buf)
	if err != nil {
		t.Fatalf("Read back: %v", err)
	}
	if parsed.Tasks() != orig.NumTasks() {
		t.Fatalf("tasks = %d", parsed.Tasks())
	}
	for i := 0; i < orig.NumTasks(); i++ {
		if parsed.ProcTimes[i] != orig.Task(model.TaskID(i)).WCET {
			t.Errorf("proc[%d] = %d", i, parsed.ProcTimes[i])
		}
	}
	// Edge count preserved.
	edges := 0
	for _, p := range parsed.Preds {
		edges += len(p)
	}
	if edges != len(orig.Edges()) {
		t.Fatalf("%d edges, want %d", edges, len(orig.Edges()))
	}
}
