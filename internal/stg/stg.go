// Package stg reads and writes the Standard Task Graph Set format of
// Tobita and Kasahara ("A standard task graph set for fair evaluation of
// multiprocessor scheduling algorithms", Journal of Scheduling 2002) — the
// paper's reference [8] and the origin of its benchmark generation method.
// Importing .stg files lets the analyses run on the published benchmark
// suite; exporting makes this repository's graphs consumable by other STG
// tools.
//
// Format (one graph per file):
//
//	<number of tasks>
//	<task id> <processing time> <number of predecessors> <pred ids...>
//	...
//
// followed by free-form comment lines (conventionally after a line of
// dashes or at EOF). Task IDs are dense from 0; the first and last tasks
// are conventionally zero-cost dummy source and sink nodes, which are kept
// as zero-WCET tasks here.
//
// STG carries no memory-access information. ToProblem synthesizes per-task
// access counts and per-edge write volumes from the paper's parameter
// ranges ([250, 550] and [0, 100]) with a seeded generator, keeping imports
// deterministic and interference analysis meaningful; zero-cost dummy
// nodes receive no accesses.
package stg

import (
	"bufio"
	"fmt"
	"io"
	"math/rand"
	"strings"

	"github.com/mia-rt/mia/internal/mapper"
	"github.com/mia-rt/mia/internal/model"
)

// maxTasks bounds the task count a file header may declare.
const maxTasks = 1 << 20

// Graph is a parsed STG file.
type Graph struct {
	// ProcTimes holds each task's processing time.
	ProcTimes []model.Cycles
	// Preds holds each task's predecessor IDs.
	Preds [][]int
}

// Tasks returns the task count.
func (g *Graph) Tasks() int { return len(g.ProcTimes) }

// Read parses an STG file.
func Read(r io.Reader) (*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	fields := func() ([]string, error) {
		for sc.Scan() {
			line := strings.TrimSpace(sc.Text())
			if line == "" || strings.HasPrefix(line, "#") {
				continue
			}
			return strings.Fields(line), nil
		}
		if err := sc.Err(); err != nil {
			return nil, err
		}
		return nil, io.ErrUnexpectedEOF
	}

	head, err := fields()
	if err != nil {
		return nil, fmt.Errorf("stg: reading task count: %w", err)
	}
	var n int
	if _, err := fmt.Sscan(head[0], &n); err != nil || n < 0 {
		return nil, fmt.Errorf("stg: bad task count %q", head[0])
	}
	// Reject absurd headers before allocating per-task slices: a corrupt
	// count must fail cleanly, not exhaust memory. The largest published STG
	// instances have 5002 tasks; 2²⁰ leaves three orders of magnitude slack.
	if n > maxTasks {
		return nil, fmt.Errorf("stg: task count %d exceeds limit %d", n, maxTasks)
	}
	g := &Graph{ProcTimes: make([]model.Cycles, n), Preds: make([][]int, n)}
	seen := make([]bool, n)
	for i := 0; i < n; i++ {
		f, err := fields()
		if err != nil {
			return nil, fmt.Errorf("stg: task %d: %w", i, err)
		}
		if len(f) < 3 {
			return nil, fmt.Errorf("stg: task line %q too short", strings.Join(f, " "))
		}
		var id int
		var proc int64
		var nPreds int
		if _, err := fmt.Sscan(f[0], &id); err != nil {
			return nil, fmt.Errorf("stg: bad task id %q", f[0])
		}
		if id < 0 || id >= n {
			return nil, fmt.Errorf("stg: task id %d outside 0..%d", id, n-1)
		}
		if seen[id] {
			return nil, fmt.Errorf("stg: duplicate task %d", id)
		}
		seen[id] = true
		if _, err := fmt.Sscan(f[1], &proc); err != nil || proc < 0 {
			return nil, fmt.Errorf("stg: task %d: bad processing time %q", id, f[1])
		}
		// Huge-but-finite processing times would overflow the int64 release
		// arithmetic downstream; model.Validate enforces the same bound on
		// every other ingestion path.
		if proc > model.MaxInput {
			return nil, fmt.Errorf("stg: task %d: processing time %d exceeds limit %d", id, proc, int64(model.MaxInput))
		}
		if _, err := fmt.Sscan(f[2], &nPreds); err != nil || nPreds < 0 {
			return nil, fmt.Errorf("stg: task %d: bad predecessor count %q", id, f[2])
		}
		if len(f) != 3+nPreds {
			return nil, fmt.Errorf("stg: task %d: %d predecessor fields, header says %d", id, len(f)-3, nPreds)
		}
		g.ProcTimes[id] = model.Cycles(proc)
		for _, pf := range f[3:] {
			var p int
			if _, err := fmt.Sscan(pf, &p); err != nil || p < 0 || p >= n {
				return nil, fmt.Errorf("stg: task %d: bad predecessor %q", id, pf)
			}
			g.Preds[id] = append(g.Preds[id], p)
		}
	}
	return g, nil
}

// SynthesisParams governs the memory annotations attached to an imported
// STG graph (the format itself has none).
type SynthesisParams struct {
	// AccMin/AccMax bound the per-task local accesses (paper defaults
	// [250, 550]); WriteMin/WriteMax the per-edge volumes ([0, 100]).
	AccMin, AccMax     model.Accesses
	WriteMin, WriteMax model.Accesses
	// Seed drives the deterministic synthesis.
	Seed int64
}

// DefaultSynthesis returns the paper's parameter ranges.
func DefaultSynthesis() SynthesisParams {
	return SynthesisParams{AccMin: 250, AccMax: 550, WriteMin: 0, WriteMax: 100, Seed: 1}
}

// ToProblem converts the parsed graph into an unmapped scheduling problem
// for the given platform, synthesizing memory annotations. Zero-cost tasks
// (the STG dummy source/sink convention) receive no accesses.
func (g *Graph) ToProblem(cores, banks int, p SynthesisParams) (*mapper.Problem, error) {
	if p.AccMax < p.AccMin || p.WriteMax < p.WriteMin {
		return nil, fmt.Errorf("stg: bad synthesis ranges %+v", p)
	}
	// Negative lower bounds would synthesize negative access counts (rejected
	// only later, by model.Validate, with a confusing diagnostic); bounds past
	// MaxInput would pass synthesis but overflow downstream accumulation.
	if p.AccMin < 0 || p.WriteMin < 0 {
		return nil, fmt.Errorf("stg: negative synthesis range %+v", p)
	}
	if p.AccMax > model.MaxInput || p.WriteMax > model.MaxInput {
		return nil, fmt.Errorf("stg: synthesis range %+v exceeds limit %d", p, int64(model.MaxInput))
	}
	rng := rand.New(rand.NewSource(p.Seed))
	randIn := func(lo, hi model.Accesses) model.Accesses {
		if hi == lo {
			return lo
		}
		return lo + model.Accesses(rng.Int63n(int64(hi-lo+1)))
	}
	prob := &mapper.Problem{Cores: cores, Banks: banks}
	for i, proc := range g.ProcTimes {
		spec := mapper.Spec{Name: fmt.Sprintf("t%d", i), WCET: proc}
		if proc > 0 {
			spec.Local = randIn(p.AccMin, p.AccMax)
		}
		prob.Specs = append(prob.Specs, spec)
	}
	for to, preds := range g.Preds {
		for _, from := range preds {
			words := model.Accesses(0)
			if g.ProcTimes[from] > 0 && g.ProcTimes[to] > 0 {
				words = randIn(p.WriteMin, p.WriteMax)
			}
			prob.Edges = append(prob.Edges, mapper.Edge{From: from, To: to, Words: words})
		}
	}
	return prob, nil
}

// Write exports a task graph in STG syntax (processing times and
// dependencies only; memory annotations have no STG representation).
func Write(w io.Writer, g *model.Graph) error {
	if _, err := fmt.Fprintf(w, "%d\n", g.NumTasks()); err != nil {
		return err
	}
	for i := 0; i < g.NumTasks(); i++ {
		id := model.TaskID(i)
		preds := g.Predecessors(id)
		if _, err := fmt.Fprintf(w, "%d %d %d", i, g.Task(id).WCET, len(preds)); err != nil {
			return err
		}
		for _, p := range preds {
			if _, err := fmt.Fprintf(w, " %d", p); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintln(w); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w, "# generated by mia (github.com/mia-rt/mia)")
	return err
}
