// Package periodic models the activation pattern the paper's introduction
// describes — "these programs are made of periodic loops that activate
// tasks" — by unrolling a task graph over several periods and checking the
// resulting schedule against per-iteration deadlines.
//
// Unrolling iteration k of the application shifts every minimal release
// date by k·period and adds a dependency from each task's k-th instance to
// its (k+1)-th (a task cannot re-execute before its previous job finished).
// Different tasks of consecutive iterations may overlap — pipelined
// execution — and the interference analysis accounts for the resulting
// cross-iteration contention exactly as for any other pair of tasks. This
// is how a single-iteration analysis extends to the steady state without
// any new theory: the time-triggered release dates computed on the
// unrolled graph remain valid for every execution.
package periodic

import (
	"fmt"

	"github.com/mia-rt/mia/internal/model"
	"github.com/mia-rt/mia/internal/sched"
)

// Unroll builds the graph of `iterations` consecutive activations of g with
// the given period: task i of iteration k has ID k·n + i, minimal release
// MinRelease(i) + k·period, and depends on its own (k−1)-th instance in
// addition to the original dependencies within iteration k. Per-core
// execution orders concatenate iteration by iteration.
func Unroll(g *model.Graph, period model.Cycles, iterations int) (*model.Graph, error) {
	if iterations < 1 {
		return nil, fmt.Errorf("periodic: %d iterations", iterations)
	}
	if period < 0 {
		return nil, fmt.Errorf("periodic: negative period %d", period)
	}
	n := g.NumTasks()
	b := model.NewBuilder(g.Cores, g.Banks)
	for k := 0; k < iterations; k++ {
		for i := 0; i < n; i++ {
			t := g.Task(model.TaskID(i))
			name := t.Name
			if iterations > 1 {
				name = fmt.Sprintf("%s@%d", t.Name, k)
			}
			b.AddTask(model.TaskSpec{
				Name:       name,
				WCET:       t.WCET,
				Core:       t.Core,
				MinRelease: t.MinRelease + model.SatMulCycles(model.Cycles(k), period),
				Local:      t.Local,
			})
		}
	}
	job := func(k int, i model.TaskID) model.TaskID { return model.TaskID(k*n + int(i)) }
	for k := 0; k < iterations; k++ {
		for _, e := range g.Edges() {
			b.AddEdge(job(k, e.From), job(k, e.To), e.Words)
		}
		if k > 0 {
			for i := 0; i < n; i++ {
				// The job-level self-dependency carries no data volume:
				// state stays in the task's own bank (its Local accesses).
				b.AddEdge(job(k-1, model.TaskID(i)), job(k, model.TaskID(i)), 0)
			}
		}
	}
	for c := 0; c < g.Cores; c++ {
		var order []model.TaskID
		for k := 0; k < iterations; k++ {
			for _, id := range g.Order(model.CoreID(c)) {
				order = append(order, job(k, id))
			}
		}
		b.SetOrder(model.CoreID(c), order)
	}
	return b.Build()
}

// IterationMakespans splits an unrolled schedule back into per-iteration
// completion dates: entry k is the latest finish among iteration k's jobs.
func IterationMakespans(res *sched.Result, tasksPerIteration, iterations int) []model.Cycles {
	out := make([]model.Cycles, iterations)
	for k := 0; k < iterations; k++ {
		for i := 0; i < tasksPerIteration; i++ {
			if f := res.Finish(model.TaskID(k*tasksPerIteration + i)); f > out[k] {
				out[k] = f
			}
		}
	}
	return out
}

// CheckDeadlines verifies the implicit-deadline discipline on an unrolled
// schedule: iteration k (released at k·period) must complete by
// (k+1)·period. It returns the first violating iteration, or -1 if all
// iterations meet their deadline.
func CheckDeadlines(res *sched.Result, tasksPerIteration, iterations int, period model.Cycles) int {
	spans := IterationMakespans(res, tasksPerIteration, iterations)
	for k, fin := range spans {
		if fin > model.SatMulCycles(model.Cycles(k+1), period) {
			return k
		}
	}
	return -1
}

// SteadyStateSlack reports the schedulability margin of the last analyzed
// iteration: period − (last iteration makespan − its release offset). A
// non-negative slack on the last iteration of a sufficiently long unroll
// indicates the pipeline has reached a sustainable steady state.
func SteadyStateSlack(res *sched.Result, tasksPerIteration, iterations int, period model.Cycles) model.Cycles {
	spans := IterationMakespans(res, tasksPerIteration, iterations)
	last := iterations - 1
	return model.SatMulCycles(model.Cycles(last+1), period) - spans[last]
}
