package periodic

import (
	"strings"
	"testing"

	"github.com/mia-rt/mia/internal/arbiter"
	"github.com/mia-rt/mia/internal/gen"
	"github.com/mia-rt/mia/internal/model"
	"github.com/mia-rt/mia/internal/sched"
	"github.com/mia-rt/mia/internal/sched/incremental"
)

func TestUnrollShape(t *testing.T) {
	g := gen.Figure1()
	u, err := Unroll(g, 10, 3)
	if err != nil {
		t.Fatalf("Unroll: %v", err)
	}
	if u.NumTasks() != 15 {
		t.Fatalf("tasks = %d, want 15", u.NumTasks())
	}
	// 5 intra-iteration edges × 3 + 5 self-dependencies × 2.
	if len(u.Edges()) != 5*3+5*2 {
		t.Fatalf("edges = %d, want 25", len(u.Edges()))
	}
	// Iteration 2's n0 (ID 10) has min release 0 + 2·10.
	if got := u.Task(10).MinRelease; got != 20 {
		t.Errorf("minRelease@2 = %d, want 20", got)
	}
	if name := u.Task(10).Name; name != "n0@2" {
		t.Errorf("name = %q", name)
	}
	if err := u.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestUnrollSingleIterationIsIdentity(t *testing.T) {
	g := gen.Figure1()
	u, err := Unroll(g, 100, 1)
	if err != nil {
		t.Fatal(err)
	}
	if u.NumTasks() != g.NumTasks() || len(u.Edges()) != len(g.Edges()) {
		t.Fatal("single-iteration unroll changed the graph")
	}
	if u.Task(0).Name != "n0" {
		t.Errorf("name = %q, want unsuffixed", u.Task(0).Name)
	}
	opts := sched.Options{Arbiter: arbiter.NewRoundRobin(1)}
	a, err := incremental.Schedule(g, opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := incremental.Schedule(u, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Equal(b) {
		t.Fatalf("unrolled schedule differs: %s", a.Diff(b))
	}
}

func TestPeriodicFigure1(t *testing.T) {
	g := gen.Figure1()
	const period = 10
	const iterations = 4
	u, err := Unroll(g, period, iterations)
	if err != nil {
		t.Fatal(err)
	}
	res, err := incremental.Schedule(u, sched.Options{Arbiter: arbiter.NewRoundRobin(1)})
	if err != nil {
		t.Fatal(err)
	}
	// The single-iteration makespan is 7 < 10, and iterations don't
	// overlap (releases at 0, 10, 20, 30): every iteration spans exactly
	// [k·10, k·10+7].
	spans := IterationMakespans(res, g.NumTasks(), iterations)
	for k, fin := range spans {
		if want := model.Cycles(k*period + 7); fin != want {
			t.Errorf("iteration %d finishes at %d, want %d", k, fin, want)
		}
	}
	if viol := CheckDeadlines(res, g.NumTasks(), iterations, period); viol != -1 {
		t.Errorf("deadline violation at iteration %d", viol)
	}
	if slack := SteadyStateSlack(res, g.NumTasks(), iterations, period); slack != 3 {
		t.Errorf("steady-state slack = %d, want 3", slack)
	}
}

func TestPeriodicOverloadDetected(t *testing.T) {
	// Period 6 < single-iteration makespan 7: with non-pipelinable
	// structure (every core used every iteration in order), iterations
	// fall progressively behind and the deadline check flags it.
	g := gen.Figure1()
	u, err := Unroll(g, 6, 4)
	if err != nil {
		t.Fatal(err)
	}
	res, err := incremental.Schedule(u, sched.Options{Arbiter: arbiter.NewRoundRobin(1)})
	if err != nil {
		t.Fatal(err)
	}
	if viol := CheckDeadlines(res, g.NumTasks(), 4, 6); viol == -1 {
		t.Error("overload not detected at period 6 < makespan 7")
	}
	if slack := SteadyStateSlack(res, g.NumTasks(), 4, 6); slack >= 0 {
		t.Errorf("steady-state slack = %d, want negative under overload", slack)
	}
}

func TestPipelinedIterationsInterfere(t *testing.T) {
	// Two independent tasks on different cores sharing a bank; period
	// shorter than their WCETs would overlap iterations of *different*
	// tasks — the unrolled analysis must pick up that cross-iteration
	// interference.
	b := model.NewBuilder(2, 1)
	b.AddTask(model.TaskSpec{Name: "a", WCET: 10, Core: 0, Local: 8})
	b.AddTask(model.TaskSpec{Name: "bb", WCET: 30, Core: 1, Local: 8})
	g := b.MustBuild()
	u, err := Unroll(g, 12, 3)
	if err != nil {
		t.Fatal(err)
	}
	res, err := incremental.Schedule(u, sched.Options{Arbiter: arbiter.NewRoundRobin(1)})
	if err != nil {
		t.Fatal(err)
	}
	// bb@0 runs [0, 30+I); a@1 releases at 12 and must interfere with it.
	bb0 := model.TaskID(1)
	a1 := model.TaskID(2)
	if !res.Overlaps(bb0, a1) {
		t.Fatalf("expected pipelined overlap: bb@0 %v, a@1 %v",
			[2]model.Cycles{res.Release[bb0], res.Finish(bb0)},
			[2]model.Cycles{res.Release[a1], res.Finish(a1)})
	}
	if res.Interference[bb0] == 0 {
		t.Error("cross-iteration interference not accounted")
	}
	if err := sched.Check(u, sched.Options{Arbiter: arbiter.NewRoundRobin(1)}, res); err != nil {
		t.Fatalf("Check: %v", err)
	}
}

func TestUnrollErrors(t *testing.T) {
	g := gen.Figure1()
	if _, err := Unroll(g, 10, 0); err == nil || !strings.Contains(err.Error(), "iterations") {
		t.Errorf("zero iterations: %v", err)
	}
	if _, err := Unroll(g, -1, 2); err == nil || !strings.Contains(err.Error(), "period") {
		t.Errorf("negative period: %v", err)
	}
}
