// Package plot renders the repository's evaluation artifacts as
// self-contained SVG documents using only the standard library: log–log
// runtime plots in the style of the paper's Figure 3 (measurement points,
// fitted power laws, legends) and schedule Gantt charts in the style of
// Figure 1. The cmd tools expose both (`miabench -svg`, `miasched -svg`).
package plot

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Series is one measured curve of a log–log plot.
type Series struct {
	Name string
	// Xs and Ys are the samples; non-positive entries are skipped (log
	// scale). Paired by index.
	Xs []float64
	Ys []float64
	// FitExponent and FitScale, when FitOK, draw the fitted power law
	// y = scale·x^exponent as a dashed line labeled O(n^e).
	FitOK       bool
	FitExponent float64
	FitScale    float64
	// Color is any SVG color; empty picks from the default palette.
	Color string
}

// LogLog is a log–log scatter/fit plot.
type LogLog struct {
	Title  string
	XLabel string
	YLabel string
	Series []Series
}

// defaultPalette holds the colors assigned to series without one.
var defaultPalette = []string{"#1465b0", "#c23b22", "#2e7d32", "#7b1fa2", "#ef6c00", "#00695c"}

const (
	marginL = 70.0
	marginR = 20.0
	marginT = 40.0
	marginB = 55.0
)

// Render writes the plot as an SVG of the given pixel size. It returns an
// error if no series contains at least one positive sample.
func (p *LogLog) Render(w io.Writer, width, height int) error {
	if width < 200 {
		width = 200
	}
	if height < 150 {
		height = 150
	}
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	usable := 0
	for _, s := range p.Series {
		for i := range s.Xs {
			if i >= len(s.Ys) || s.Xs[i] <= 0 || s.Ys[i] <= 0 {
				continue
			}
			usable++
			minX, maxX = math.Min(minX, s.Xs[i]), math.Max(maxX, s.Xs[i])
			minY, maxY = math.Min(minY, s.Ys[i]), math.Max(maxY, s.Ys[i])
		}
	}
	if usable == 0 {
		return fmt.Errorf("plot: no positive samples to draw")
	}
	// Pad the log range to whole decades for clean axes.
	loX, hiX := math.Floor(math.Log10(minX)), math.Ceil(math.Log10(maxX))
	loY, hiY := math.Floor(math.Log10(minY)), math.Ceil(math.Log10(maxY))
	if hiX == loX {
		hiX++
	}
	if hiY == loY {
		hiY++
	}
	plotW := float64(width) - marginL - marginR
	plotH := float64(height) - marginT - marginB
	xpos := func(x float64) float64 { return marginL + (math.Log10(x)-loX)/(hiX-loX)*plotW }
	ypos := func(y float64) float64 { return marginT + plotH - (math.Log10(y)-loY)/(hiY-loY)*plotH }

	var sb strings.Builder
	fmt.Fprintf(&sb, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d" font-family="sans-serif" font-size="11">`+"\n",
		width, height, width, height)
	fmt.Fprintf(&sb, `<rect width="%d" height="%d" fill="white"/>`+"\n", width, height)
	fmt.Fprintf(&sb, `<text x="%g" y="20" font-size="14" font-weight="bold">%s</text>`+"\n", marginL, esc(p.Title))

	// Grid and ticks at decades.
	for d := loX; d <= hiX; d++ {
		x := xpos(math.Pow(10, d))
		fmt.Fprintf(&sb, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="#ddd"/>`+"\n", x, marginT, x, marginT+plotH)
		fmt.Fprintf(&sb, `<text x="%.1f" y="%.1f" text-anchor="middle">1e%d</text>`+"\n", x, marginT+plotH+16, int(d))
	}
	for d := loY; d <= hiY; d++ {
		y := ypos(math.Pow(10, d))
		fmt.Fprintf(&sb, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="#ddd"/>`+"\n", marginL, y, marginL+plotW, y)
		fmt.Fprintf(&sb, `<text x="%.1f" y="%.1f" text-anchor="end">1e%d</text>`+"\n", marginL-6, y+4, int(d))
	}
	fmt.Fprintf(&sb, `<rect x="%.1f" y="%.1f" width="%.1f" height="%.1f" fill="none" stroke="#444"/>`+"\n", marginL, marginT, plotW, plotH)
	fmt.Fprintf(&sb, `<text x="%.1f" y="%.1f" text-anchor="middle">%s</text>`+"\n", marginL+plotW/2, marginT+plotH+38, esc(p.XLabel))
	fmt.Fprintf(&sb, `<text x="16" y="%.1f" text-anchor="middle" transform="rotate(-90 16 %.1f)">%s</text>`+"\n",
		marginT+plotH/2, marginT+plotH/2, esc(p.YLabel))

	legendY := marginT + 8
	for si, s := range p.Series {
		color := s.Color
		if color == "" {
			color = defaultPalette[si%len(defaultPalette)]
		}
		// Connected measurement points.
		var path strings.Builder
		first := true
		for i := range s.Xs {
			if i >= len(s.Ys) || s.Xs[i] <= 0 || s.Ys[i] <= 0 {
				continue
			}
			x, y := xpos(s.Xs[i]), ypos(s.Ys[i])
			if first {
				fmt.Fprintf(&path, "M%.1f %.1f", x, y)
				first = false
			} else {
				fmt.Fprintf(&path, " L%.1f %.1f", x, y)
			}
			fmt.Fprintf(&sb, `<circle cx="%.1f" cy="%.1f" r="3" fill="%s"/>`+"\n", x, y, color)
		}
		if !first {
			fmt.Fprintf(&sb, `<path d="%s" fill="none" stroke="%s" stroke-width="1.5"/>`+"\n", path.String(), color)
		}
		label := s.Name
		// Fitted power law as a dashed line across the x range.
		if s.FitOK && s.FitScale > 0 {
			x0, x1 := math.Pow(10, loX), math.Pow(10, hiX)
			y0 := s.FitScale * math.Pow(x0, s.FitExponent)
			y1 := s.FitScale * math.Pow(x1, s.FitExponent)
			// Clip to the y range by walking the segment in log space.
			fmt.Fprintf(&sb, `<clipPath id="clip%d"><rect x="%.1f" y="%.1f" width="%.1f" height="%.1f"/></clipPath>`+"\n",
				si, marginL, marginT, plotW, plotH)
			if y0 > 0 && y1 > 0 {
				fmt.Fprintf(&sb, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="%s" stroke-dasharray="5,4" clip-path="url(#clip%d)"/>`+"\n",
					xpos(x0), ypos(y0), xpos(x1), ypos(y1), color, si)
			}
			label = fmt.Sprintf("%s — O(n^%.2f)", s.Name, s.FitExponent)
		}
		fmt.Fprintf(&sb, `<rect x="%.1f" y="%.1f" width="10" height="10" fill="%s"/>`+"\n", marginL+10, legendY, color)
		fmt.Fprintf(&sb, `<text x="%.1f" y="%.1f">%s</text>`+"\n", marginL+26, legendY+9, esc(label))
		legendY += 16
	}
	sb.WriteString("</svg>\n")
	_, err := io.WriteString(w, sb.String())
	return err
}

// esc escapes the SVG text payload.
func esc(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;")
	return r.Replace(s)
}
