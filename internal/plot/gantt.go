package plot

import (
	"fmt"
	"io"
	"strings"

	"github.com/mia-rt/mia/internal/model"
	"github.com/mia-rt/mia/internal/sched"
)

// ganttColors shades task boxes per core.
var ganttColors = []string{"#9ecae1", "#a1d99b", "#fdae6b", "#bcbddc", "#fc9272", "#c7e9c0", "#fdd0a2", "#dadaeb"}

// GanttSVG renders a computed schedule as an SVG timing diagram in the
// style of the paper's Figure 1: one lane per core, one box per task
// spanning [release, finish), labeled with the task name and its
// interference when non-zero.
func GanttSVG(w io.Writer, g *model.Graph, res *sched.Result, width int) error {
	if width < 300 {
		width = 300
	}
	const laneH = 34.0
	const laneGap = 8.0
	const left = 60.0
	const top = 30.0
	span := float64(res.Makespan)
	if span <= 0 {
		span = 1
	}
	plotW := float64(width) - left - 20
	xpos := func(t model.Cycles) float64 { return left + float64(t)/span*plotW }
	height := int(top + float64(g.Cores)*(laneH+laneGap) + 50)

	var sb strings.Builder
	fmt.Fprintf(&sb, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d" font-family="sans-serif" font-size="11">`+"\n",
		width, height, width, height)
	fmt.Fprintf(&sb, `<rect width="%d" height="%d" fill="white"/>`+"\n", width, height)
	fmt.Fprintf(&sb, `<text x="%g" y="18" font-size="13" font-weight="bold">%s schedule — makespan %d cycles</text>`+"\n",
		left, esc(res.Algorithm), res.Makespan)

	for k := 0; k < g.Cores; k++ {
		laneY := top + float64(k)*(laneH+laneGap)
		fmt.Fprintf(&sb, `<text x="8" y="%.1f">%s</text>`+"\n", laneY+laneH/2+4, model.CoreID(k))
		fmt.Fprintf(&sb, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="#ccc"/>`+"\n",
			left, laneY+laneH, left+plotW, laneY+laneH)
		color := ganttColors[k%len(ganttColors)]
		for _, id := range g.Order(model.CoreID(k)) {
			from, to := res.Window(id)
			x0, x1 := xpos(from), xpos(to)
			if x1-x0 < 1 {
				x1 = x0 + 1
			}
			fmt.Fprintf(&sb, `<rect x="%.1f" y="%.1f" width="%.1f" height="%.1f" fill="%s" stroke="#333"/>`+"\n",
				x0, laneY, x1-x0, laneH, color)
			label := g.Task(id).Name
			if inter := res.Interference[id]; inter > 0 {
				label += fmt.Sprintf(" I:%d", inter)
			}
			fmt.Fprintf(&sb, `<text x="%.1f" y="%.1f" clip-path="none">%s</text>`+"\n", x0+3, laneY+laneH/2+4, esc(label))
		}
	}
	// Time axis with ~8 ticks.
	axisY := top + float64(g.Cores)*(laneH+laneGap) + 10
	fmt.Fprintf(&sb, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="#444"/>`+"\n", left, axisY, left+plotW, axisY)
	step := niceStep(res.Makespan, 8)
	for t := model.Cycles(0); t <= res.Makespan; t += step {
		x := xpos(t)
		fmt.Fprintf(&sb, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="#444"/>`+"\n", x, axisY, x, axisY+5)
		fmt.Fprintf(&sb, `<text x="%.1f" y="%.1f" text-anchor="middle">%d</text>`+"\n", x, axisY+18, t)
		if step == 0 {
			break
		}
	}
	sb.WriteString("</svg>\n")
	_, err := io.WriteString(w, sb.String())
	return err
}

// niceStep picks a round tick interval yielding about the wanted count.
func niceStep(span model.Cycles, ticks int) model.Cycles {
	if span <= 0 || ticks < 1 {
		return 1
	}
	raw := int64(span) / int64(ticks)
	if raw < 1 {
		return 1
	}
	mag := int64(1)
	for mag*10 <= raw {
		mag *= 10
	}
	for _, mult := range []int64{1, 2, 5, 10} {
		if raw <= mult*mag {
			return model.Cycles(mult * mag)
		}
	}
	return model.Cycles(10 * mag)
}
