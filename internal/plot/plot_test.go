package plot

import (
	"bytes"
	"strings"
	"testing"

	"github.com/mia-rt/mia/internal/arbiter"
	"github.com/mia-rt/mia/internal/gen"
	"github.com/mia-rt/mia/internal/model"
	"github.com/mia-rt/mia/internal/sched"
	"github.com/mia-rt/mia/internal/sched/incremental"
)

func sampleLogLog() *LogLog {
	return &LogLog{
		Title:  "NL64",
		XLabel: "nodes",
		YLabel: "time (s)",
		Series: []Series{
			{
				Name:  "New (incremental)",
				Xs:    []float64{128, 256, 512, 1024},
				Ys:    []float64{0.0001, 0.0002, 0.0011, 0.0060},
				FitOK: true, FitExponent: 1.92, FitScale: 1e-8,
			},
			{
				Name:  "Old (fixpoint)",
				Xs:    []float64{128, 256, 512},
				Ys:    []float64{0.0014, 0.0524, 1.2249},
				FitOK: true, FitExponent: 4.70, FitScale: 1e-13,
			},
		},
	}
}

func TestLogLogRender(t *testing.T) {
	var buf bytes.Buffer
	if err := sampleLogLog().Render(&buf, 640, 480); err != nil {
		t.Fatalf("Render: %v", err)
	}
	out := buf.String()
	for _, want := range []string{
		"<svg", "</svg>", "NL64", "nodes", "time (s)",
		"O(n^1.92)", "O(n^4.70)", "stroke-dasharray", "circle",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("SVG missing %q", want)
		}
	}
	// 4 + 3 measurement points.
	if got := strings.Count(out, "<circle"); got != 7 {
		t.Errorf("%d circles, want 7", got)
	}
}

func TestLogLogSkipsNonPositive(t *testing.T) {
	p := &LogLog{Series: []Series{{
		Name: "x",
		Xs:   []float64{10, 100, 1000},
		Ys:   []float64{1, -1, 0}, // only the first usable
	}}}
	var buf bytes.Buffer
	if err := p.Render(&buf, 400, 300); err != nil {
		t.Fatalf("Render: %v", err)
	}
	if got := strings.Count(buf.String(), "<circle"); got != 1 {
		t.Errorf("%d circles, want 1", got)
	}
}

func TestLogLogEmpty(t *testing.T) {
	p := &LogLog{Series: []Series{{Name: "x", Xs: []float64{1}, Ys: []float64{-1}}}}
	if err := p.Render(&bytes.Buffer{}, 400, 300); err == nil {
		t.Fatal("empty plot accepted")
	}
}

func TestLogLogTinySizesClamped(t *testing.T) {
	var buf bytes.Buffer
	if err := sampleLogLog().Render(&buf, 10, 10); err != nil {
		t.Fatalf("Render: %v", err)
	}
	if !strings.Contains(buf.String(), `width="200"`) {
		t.Error("width not clamped")
	}
}

func TestEscape(t *testing.T) {
	p := sampleLogLog()
	p.Title = `a < b & c > d`
	var buf bytes.Buffer
	if err := p.Render(&buf, 400, 300); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "a &lt; b &amp; c &gt; d") {
		t.Error("title not escaped")
	}
}

func TestGanttSVG(t *testing.T) {
	g := gen.Figure1()
	res, err := incremental.Schedule(g, sched.Options{Arbiter: arbiter.NewRoundRobin(1)})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := GanttSVG(&buf, g, res, 700); err != nil {
		t.Fatalf("GanttSVG: %v", err)
	}
	out := buf.String()
	for _, want := range []string{"PE0", "PE3", "n3 I:2", "makespan 7 cycles", "<rect"} {
		if !strings.Contains(out, want) {
			t.Errorf("Gantt SVG missing %q", want)
		}
	}
	// One box per task (plus the background rect).
	if got := strings.Count(out, "<rect"); got != g.NumTasks()+1 {
		t.Errorf("%d rects, want %d", got, g.NumTasks()+1)
	}
}

func TestGanttSVGEmptySchedule(t *testing.T) {
	g := gen.Figure1()
	res := sched.NewResult("x", g.NumTasks(), g.Banks)
	var buf bytes.Buffer
	if err := GanttSVG(&buf, g, res, 400); err != nil {
		t.Fatalf("GanttSVG on zero makespan: %v", err)
	}
}

func TestNiceStep(t *testing.T) {
	cases := map[int64]int64{
		7:     1,
		80:    10,
		100:   20,
		999:   200,
		2328:  500,
		10000: 2000,
	}
	for span, want := range cases {
		if got := niceStep(model.Cycles(span), 8); int64(got) != want {
			t.Errorf("niceStep(%d) = %d, want %d", span, got, want)
		}
	}
	if niceStep(0, 8) != 1 || niceStep(100, 0) != 1 {
		t.Error("degenerate inputs not clamped")
	}
}
