// Package arbiter models shared-memory bus arbitration policies as
// interference-bound functions: the IBUS of Algorithm 1 in the paper.
//
// An Arbiter answers one question: given that a destination initiator wants
// to perform d accesses on a bank, and a set of competing initiators each
// wants to perform w_i accesses on the same bank during an overlapping time
// window, by how many cycles can the destination be delayed in the worst
// case? The answer must be monotone in the competitor set — adding a
// competitor can only increase the bound — which is the hypothesis
// (Section II.C) that makes the paper's incremental algorithm sound.
//
// Competitors are expressed per initiator (core), not per task: when several
// tasks of the same core compete with the destination over its lifetime,
// their demands are summed into a single competitor entry. This is the
// paper's "single big task" hypothesis, which it reports to be *less*
// pessimistic than treating the tasks separately (for round-robin,
// min(Σw, d) ≤ Σ min(w, d)). The schedulers can disable merging to quantify
// that claim (see the ablation benchmarks).
package arbiter

import (
	"fmt"

	"github.com/mia-rt/mia/internal/model"
)

// Request is the demand of one initiator on one memory bank: the initiator's
// core and the number of accesses it performs on the bank within the
// analyzed window.
type Request struct {
	Core   model.CoreID
	Demand model.Accesses
}

// Arbiter is a bus-arbitration policy reduced to its worst-case
// interference-bound function.
type Arbiter interface {
	// Name identifies the policy in logs and benchmark tables.
	Name() string

	// Bound returns an upper bound on the delay, in cycles, suffered by
	// dst's accesses on bank b given the competing demands. It must be
	// monotone and subadditive-safe: Bound(dst, W) ≤ Bound(dst, W∪{x}),
	// and Bound(dst, ∅) = 0.
	Bound(dst Request, competitors []Request, b model.BankID) model.Cycles

	// Additive reports whether the policy's bound decomposes per
	// competitor: Bound(dst, W) = Σ_{x∈W} Bound(dst, {x}). Additive
	// policies admit an O(1) incremental update when a competitor's demand
	// grows, which the incremental scheduler exploits as a fast path
	// (the speed-up the paper's Section II.C anticipates).
	Additive() bool
}

// SingleTerm is an optional extension for additive policies: a direct
// evaluation of the per-competitor term Bound(dst, {comp}, b) without
// building a one-element slice. The incremental scheduler's cached-IBUS fast
// path calls it once per interferer update, so avoiding the slice round trip
// (and the escape of the scratch buffer through the interface) measurably
// trims the per-event constant.
//
// Implementations must satisfy BoundOne(dst, comp, b) ==
// Bound(dst, []Request{comp}, b) exactly; the arbiter test suite
// cross-checks the two on random requests.
type SingleTerm interface {
	BoundOne(dst, comp Request, b model.BankID) model.Cycles
}

// One evaluates the single-competitor bound Bound(dst, {comp}, b), through
// the policy's direct BoundOne when implemented and through the general
// Bound with the caller's scratch buffer (len ≥ 1) otherwise.
func One(a Arbiter, dst, comp Request, b model.BankID, scratch []Request) model.Cycles {
	if st, ok := a.(SingleTerm); ok {
		return st.BoundOne(dst, comp, b)
	}
	scratch[0] = comp
	return a.Bound(dst, scratch[:1], b)
}

// Validate sanity-checks a request set before handing it to a policy.
// Policies themselves assume well-formed inputs.
func Validate(dst Request, competitors []Request) error {
	if dst.Demand < 0 {
		return fmt.Errorf("arbiter: negative destination demand %d", dst.Demand)
	}
	for _, c := range competitors {
		if c.Demand < 0 {
			return fmt.Errorf("arbiter: negative competitor demand %d on core %d", c.Demand, c.Core)
		}
		if c.Core == dst.Core {
			return fmt.Errorf("arbiter: competitor on destination core %d", c.Core)
		}
	}
	return nil
}

func minAcc(a, b model.Accesses) model.Accesses {
	if a < b {
		return a
	}
	return b
}
