package arbiter

import (
	"fmt"

	"github.com/mia-rt/mia/internal/model"
)

// TDM models a time-division-multiplexing bus: each initiator owns a fixed
// slot in a repeating frame of Slots slots of SlotLength cycles. TDM is the
// fully time-composable policy often advocated for hard real-time platforms:
// the delay of an access depends only on the frame geometry, never on what
// competitors do.
//
// Convention: task WCETs in isolation are measured with immediate bus grants
// (as for the round-robin policies), so the *additional* delay charged as
// interference is the worst-case wait for the initiator's slot, (Slots−1) ·
// SlotLength cycles per access, as soon as the task shares its window with
// at least one competitor. Without competitors no interference is charged,
// consistent with this module's definition of interference as the slowdown
// caused by co-running tasks. The bound is deliberately independent of the
// competitors' demands, which makes TDM the reference point for "isolation
// by design" comparisons against round-robin.
type TDM struct {
	// Slots is the number of slots per frame (usually the core count).
	Slots int
	// SlotLength is the length of one slot in cycles.
	SlotLength model.Cycles
}

// NewTDM returns a TDM arbiter with the given frame geometry.
func NewTDM(slots int, slotLength model.Cycles) *TDM {
	if slots < 1 {
		slots = 1
	}
	if slotLength < 1 {
		slotLength = 1
	}
	return &TDM{Slots: slots, SlotLength: slotLength}
}

// Name implements Arbiter.
func (t *TDM) Name() string {
	return fmt.Sprintf("tdm(slots=%d,len=%d)", t.Slots, t.SlotLength)
}

// Bound implements Arbiter.
func (t *TDM) Bound(dst Request, competitors []Request, _ model.BankID) model.Cycles {
	if dst.Demand <= 0 || len(competitors) == 0 || t.Slots <= 1 {
		return 0
	}
	// Every access waits for the other Slots-1 windows of SlotLength each;
	// the factors are runtime-configured, so the product saturates rather
	// than wraps on adversarial slot tables.
	return model.ScaleAccesses(dst.Demand, model.SatMulCycles(model.Cycles(t.Slots-1), t.SlotLength))
}

// Additive implements Arbiter. The TDM bound is not additive: it jumps to
// its full value with the first competitor and stays flat afterwards. It is
// still monotone, which is all the schedulers require.
func (t *TDM) Additive() bool { return false }
