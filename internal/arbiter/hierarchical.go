package arbiter

import (
	"fmt"

	"github.com/mia-rt/mia/internal/model"
)

// HierarchicalRR models a two-level round-robin arbitration tree, as found
// in the Kalray MPPA-256 compute cluster where processing elements reach a
// memory bank through paired first-level arbiters feeding a top-level
// round-robin stage.
//
// Cores are partitioned into groups of GroupSize consecutive cores
// (cores k and k+1 share a group when GroupSize = 2, the MPPA pairing).
// An access from the destination competes:
//
//   - at level 1, with the demand of each other core in its own group
//     (one delay slot per competitor access, bounded by the destination's
//     own demand, as in flat round-robin);
//   - at level 2, with each other *group*'s aggregated demand (one delay
//     slot per group access, again bounded by the destination's demand).
//
// The bound is therefore
//
//	IBUS = L · [ Σ_{same-group i} min(w_i, d) + Σ_{other groups G} min(W_G, d) ]
//
// which degrades gracefully to flat round-robin when GroupSize ≤ 1. Grouping
// at level 2 makes the policy non-additive per competitor (a new competitor
// joins an existing group's min term), so the incremental scheduler takes
// its general recomputation path for this arbiter.
type HierarchicalRR struct {
	// WordLatency is the bank service time per access in cycles.
	WordLatency model.Cycles
	// GroupSize is the number of consecutive cores per first-level arbiter
	// (2 on the MPPA-256). Values ≤ 1 collapse to flat round-robin.
	GroupSize int
}

// NewHierarchicalRR returns a two-level round-robin arbiter.
func NewHierarchicalRR(wordLatency model.Cycles, groupSize int) *HierarchicalRR {
	if wordLatency < 1 {
		wordLatency = 1
	}
	if groupSize < 1 {
		groupSize = 1
	}
	return &HierarchicalRR{WordLatency: wordLatency, GroupSize: groupSize}
}

// Name implements Arbiter.
func (h *HierarchicalRR) Name() string {
	return fmt.Sprintf("hier-rr(L=%d,g=%d)", h.WordLatency, h.GroupSize)
}

// Bound implements Arbiter.
func (h *HierarchicalRR) Bound(dst Request, competitors []Request, _ model.BankID) model.Cycles {
	if dst.Demand <= 0 || len(competitors) == 0 {
		return 0
	}
	if h.GroupSize <= 1 {
		// Flat round-robin degenerate case.
		var slots model.Accesses
		for _, c := range competitors {
			slots += minAcc(c.Demand, dst.Demand)
		}
		return model.ScaleAccesses(slots, h.WordLatency)
	}
	dstGroup := int(dst.Core) / h.GroupSize
	var slots model.Accesses
	//mialint:ignore hotpathalloc -- per-call scratch sized by group fan-out; Bound must stay stateless because the parallel kernel calls it from every partition concurrently
	otherGroups := make(map[int]model.Accesses)
	for _, c := range competitors {
		g := int(c.Core) / h.GroupSize
		if g == dstGroup {
			slots += minAcc(c.Demand, dst.Demand)
		} else {
			otherGroups[g] += c.Demand
		}
	}
	//mialint:ignore determinism -- commutative integer sum over group totals; no iteration order can be observed in the result
	for _, w := range otherGroups {
		slots += minAcc(w, dst.Demand)
	}
	return model.ScaleAccesses(slots, h.WordLatency)
}

// Additive implements Arbiter. Level-2 grouping couples competitors of the
// same group, so the bound is not a per-competitor sum.
func (h *HierarchicalRR) Additive() bool { return false }
