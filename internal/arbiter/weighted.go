package arbiter

import (
	"fmt"

	"github.com/mia-rt/mia/internal/model"
)

// WeightedRR models a weighted round-robin bus: in each arbitration round,
// initiator k may be granted up to Weight(k) consecutive accesses before
// the grant moves on. Weighted policies prioritize bandwidth-critical cores
// while staying starvation-free — a common soft spot between plain
// round-robin and fixed priorities.
//
// Worst case for a destination with demand d and per-round quantum q_dst:
// the destination needs ⌈d/q_dst⌉ arbitration rounds, and in every round
// each competitor k can consume up to its own quantum q_k (bounded by its
// total demand):
//
//	IBUS = L · Σ_k min(w_k, ⌈d/q_dst⌉ · q_k)
//
// With all weights 1 this is exactly the flat round-robin bound.
type WeightedRR struct {
	// WordLatency is the bank service time per access in cycles.
	WordLatency model.Cycles
	// Weight returns the per-round quantum of a core (≥ 1). Nil means
	// weight 1 for every core (plain round-robin).
	Weight func(model.CoreID) int64
}

// NewWeightedRR returns a weighted round-robin arbiter.
func NewWeightedRR(wordLatency model.Cycles, weight func(model.CoreID) int64) *WeightedRR {
	if wordLatency < 1 {
		wordLatency = 1
	}
	return &WeightedRR{WordLatency: wordLatency, Weight: weight}
}

// Name implements Arbiter.
func (w *WeightedRR) Name() string {
	return fmt.Sprintf("weighted-rr(L=%d)", w.WordLatency)
}

func (w *WeightedRR) quantum(c model.CoreID) int64 {
	if w.Weight == nil {
		return 1
	}
	if q := w.Weight(c); q > 0 {
		return q
	}
	return 1
}

// Bound implements Arbiter.
func (w *WeightedRR) Bound(dst Request, competitors []Request, _ model.BankID) model.Cycles {
	if dst.Demand <= 0 || len(competitors) == 0 {
		return 0
	}
	qDst := w.quantum(dst.Core)
	rounds := (int64(dst.Demand) + qDst - 1) / qDst
	var slots model.Accesses
	for _, c := range competitors {
		cap := model.Accesses(rounds * w.quantum(c.Core))
		slots += minAcc(c.Demand, cap)
	}
	return model.ScaleAccesses(slots, w.WordLatency)
}

// Additive implements Arbiter: the bound is a per-competitor sum.
func (w *WeightedRR) Additive() bool { return true }

// BoundOne implements SingleTerm: one competitor's round-capped term.
func (w *WeightedRR) BoundOne(dst, comp Request, _ model.BankID) model.Cycles {
	if dst.Demand <= 0 {
		return 0
	}
	qDst := w.quantum(dst.Core)
	rounds := (int64(dst.Demand) + qDst - 1) / qDst
	cap := model.Accesses(rounds * w.quantum(comp.Core))
	return model.ScaleAccesses(minAcc(comp.Demand, cap), w.WordLatency)
}
