package arbiter

import "github.com/mia-rt/mia/internal/model"

// None is the interference-free reference policy: every bound is zero. It
// computes the schedule a tool would produce if it ignored memory
// interference altogether — the top timing diagram of the paper's Figure 1
// (makespan 6 instead of the correct 7) — and serves as the optimistic
// baseline in the pessimism experiments.
type None struct{}

// NewNone returns the interference-free policy.
func NewNone() None { return None{} }

// Name implements Arbiter.
func (None) Name() string { return "none" }

// Bound implements Arbiter: always zero.
func (None) Bound(Request, []Request, model.BankID) model.Cycles { return 0 }

// Additive implements Arbiter: zero is trivially additive.
func (None) Additive() bool { return true }

// BoundOne implements SingleTerm: always zero.
func (None) BoundOne(Request, Request, model.BankID) model.Cycles { return 0 }
