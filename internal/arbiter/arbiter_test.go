package arbiter

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"github.com/mia-rt/mia/internal/model"
)

func req(core int, demand int64) Request {
	return Request{Core: model.CoreID(core), Demand: model.Accesses(demand)}
}

// allArbiters returns one representative instance of every policy, for
// property tests that must hold for any arbiter.
func allArbiters() []Arbiter {
	return []Arbiter{
		NewRoundRobin(1),
		NewRoundRobin(3),
		NewHierarchicalRR(1, 2),
		NewHierarchicalRR(2, 4),
		NewTDM(16, 4),
		NewFixedPriority(1),
	}
}

func TestRoundRobinPaperExample(t *testing.T) {
	// Section II.A: three cores each writing 8 words through a 1-word RR
	// bus; each is halted 8+8 = 16 cycles.
	rr := NewRoundRobin(1)
	got := rr.Bound(req(0, 8), []Request{req(1, 8), req(2, 8)}, 0)
	if got != 16 {
		t.Fatalf("Bound = %d, want 16 (paper worked example)", got)
	}
}

func TestRoundRobinMinClamping(t *testing.T) {
	rr := NewRoundRobin(1)
	// A competitor with more demand than the destination can delay it at
	// most once per destination access.
	if got := rr.Bound(req(0, 3), []Request{req(1, 100)}, 0); got != 3 {
		t.Errorf("Bound = %d, want 3", got)
	}
	// A competitor with less demand contributes all of its accesses.
	if got := rr.Bound(req(0, 100), []Request{req(1, 3)}, 0); got != 3 {
		t.Errorf("Bound = %d, want 3", got)
	}
}

func TestRoundRobinLatencyScales(t *testing.T) {
	rr := NewRoundRobin(4)
	if got := rr.Bound(req(0, 2), []Request{req(1, 2)}, 0); got != 8 {
		t.Errorf("Bound = %d, want 8", got)
	}
}

func TestRoundRobinZeroCases(t *testing.T) {
	rr := NewRoundRobin(1)
	if got := rr.Bound(req(0, 0), []Request{req(1, 9)}, 0); got != 0 {
		t.Errorf("zero destination demand: Bound = %d, want 0", got)
	}
	if got := rr.Bound(req(0, 9), nil, 0); got != 0 {
		t.Errorf("no competitors: Bound = %d, want 0", got)
	}
	if got := rr.Bound(req(0, 9), []Request{req(1, 0)}, 0); got != 0 {
		t.Errorf("idle competitor: Bound = %d, want 0", got)
	}
}

func TestNewRoundRobinClampsLatency(t *testing.T) {
	if NewRoundRobin(0).WordLatency != 1 {
		t.Error("latency not clamped to 1")
	}
}

func TestHierarchicalCollapsesToFlat(t *testing.T) {
	flat := NewRoundRobin(1)
	hier := NewHierarchicalRR(1, 1)
	comps := []Request{req(1, 5), req(2, 9), req(3, 2)}
	dst := req(0, 6)
	if f, h := flat.Bound(dst, comps, 0), hier.Bound(dst, comps, 0); f != h {
		t.Errorf("group size 1: hier %d != flat %d", h, f)
	}
}

func TestHierarchicalGrouping(t *testing.T) {
	// Groups of 2: cores {0,1}, {2,3}. Destination core 0, demand 10.
	// Core 1 (same group): min(4, 10) = 4.
	// Cores 2 and 3 (other group, aggregated 6+7=13): min(13, 10) = 10.
	h := NewHierarchicalRR(1, 2)
	got := h.Bound(req(0, 10), []Request{req(1, 4), req(2, 6), req(3, 7)}, 0)
	if got != 14 {
		t.Fatalf("Bound = %d, want 14", got)
	}
}

func TestHierarchicalNeverExceedsFlat(t *testing.T) {
	// Aggregating a group can only tighten the bound:
	// min(Σw, d) ≤ Σ min(w, d).
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		dst := req(0, int64(rng.Intn(50)+1))
		var comps []Request
		for c := 1; c < 8; c++ {
			if rng.Intn(2) == 0 {
				comps = append(comps, req(c, int64(rng.Intn(50))))
			}
		}
		flat := NewRoundRobin(1).Bound(dst, comps, 0)
		hier := NewHierarchicalRR(1, 4).Bound(dst, comps, 0)
		return hier <= flat
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestTDMIndependentOfCompetitorDemand(t *testing.T) {
	tdm := NewTDM(4, 2)
	small := tdm.Bound(req(0, 5), []Request{req(1, 1)}, 0)
	large := tdm.Bound(req(0, 5), []Request{req(1, 1000), req(2, 1000)}, 0)
	if small != large {
		t.Errorf("TDM bound varies with competitor demand: %d vs %d", small, large)
	}
	if small != 5*3*2 { // d · (slots-1) · slotLen
		t.Errorf("TDM bound = %d, want 30", small)
	}
	if got := tdm.Bound(req(0, 5), nil, 0); got != 0 {
		t.Errorf("TDM with no competitors = %d, want 0", got)
	}
}

func TestTDMSingleSlot(t *testing.T) {
	tdm := NewTDM(1, 8)
	if got := tdm.Bound(req(0, 5), []Request{req(1, 5)}, 0); got != 0 {
		t.Errorf("single-slot TDM = %d, want 0", got)
	}
}

func TestFixedPriorityAsymmetry(t *testing.T) {
	fp := NewFixedPriority(1)
	// Core 0 (highest priority) delayed only by blocking: min(20, 5) = 5.
	if got := fp.Bound(req(0, 5), []Request{req(1, 20)}, 0); got != 5 {
		t.Errorf("high-priority bound = %d, want 5", got)
	}
	// Core 1 (lower priority) absorbs all of core 0's demand.
	if got := fp.Bound(req(1, 5), []Request{req(0, 20)}, 0); got != 20 {
		t.Errorf("low-priority bound = %d, want 20", got)
	}
}

func TestFixedPriorityCustomPriorities(t *testing.T) {
	fp := &FixedPriority{WordLatency: 1, Priority: func(c model.CoreID) int { return -int(c) }}
	// Now higher core ID = higher priority: core 1 outranks core 0.
	if got := fp.Bound(req(1, 5), []Request{req(0, 20)}, 0); got != 5 {
		t.Errorf("custom priority bound = %d, want 5", got)
	}
}

func TestMonotonicityAllArbiters(t *testing.T) {
	// The schedulers' soundness rests on: adding a competitor, or growing a
	// competitor's demand, never decreases the bound (paper §II.C).
	for _, a := range allArbiters() {
		a := a
		t.Run(a.Name(), func(t *testing.T) {
			check := func(seed int64) bool {
				rng := rand.New(rand.NewSource(seed))
				dst := req(0, int64(rng.Intn(40)+1))
				var comps []Request
				for c := 1; c < 6; c++ {
					if rng.Intn(2) == 0 {
						comps = append(comps, req(c, int64(rng.Intn(40))))
					}
				}
				base := a.Bound(dst, comps, 0)
				// Adding a fresh competitor:
				withNew := a.Bound(dst, append(append([]Request(nil), comps...), req(6, int64(rng.Intn(40)+1))), 0)
				if withNew < base {
					return false
				}
				// Growing an existing competitor's demand:
				if len(comps) > 0 {
					grown := append([]Request(nil), comps...)
					grown[0].Demand += model.Accesses(rng.Intn(20) + 1)
					if a.Bound(dst, grown, 0) < base {
						return false
					}
				}
				return true
			}
			if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestEmptySetIsZeroAllArbiters(t *testing.T) {
	for _, a := range allArbiters() {
		if got := a.Bound(req(0, 17), nil, 0); got != 0 {
			t.Errorf("%s: Bound(∅) = %d, want 0", a.Name(), got)
		}
	}
}

func TestAdditivityFlagMatchesBehavior(t *testing.T) {
	// For arbiters that declare Additive(), Bound must decompose as a sum
	// of singleton bounds.
	for _, a := range allArbiters() {
		if !a.Additive() {
			continue
		}
		a := a
		t.Run(a.Name(), func(t *testing.T) {
			check := func(seed int64) bool {
				rng := rand.New(rand.NewSource(seed))
				dst := req(0, int64(rng.Intn(40)+1))
				var comps []Request
				for c := 1; c < 6; c++ {
					comps = append(comps, req(c, int64(rng.Intn(40))))
				}
				whole := a.Bound(dst, comps, 0)
				var sum model.Cycles
				for _, c := range comps {
					sum += a.Bound(dst, []Request{c}, 0)
				}
				return whole == sum
			}
			if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestValidate(t *testing.T) {
	if err := Validate(req(0, 5), []Request{req(1, 5)}); err != nil {
		t.Errorf("valid request rejected: %v", err)
	}
	if err := Validate(req(0, -1), nil); err == nil {
		t.Error("negative destination demand accepted")
	}
	if err := Validate(req(0, 1), []Request{req(1, -2)}); err == nil {
		t.Error("negative competitor demand accepted")
	}
	if err := Validate(req(0, 1), []Request{req(0, 2)}); err == nil {
		t.Error("competitor on destination core accepted")
	}
}

func TestRegistry(t *testing.T) {
	for _, name := range Known() {
		a, err := New(Spec{Policy: name, WordLatency: 1, Slots: 4, SlotLength: 1})
		if err != nil {
			t.Errorf("New(%q): %v", name, err)
			continue
		}
		if a.Name() == "" {
			t.Errorf("%q has empty Name", name)
		}
	}
	if _, err := New(Spec{Policy: "nonsense"}); err == nil || !strings.Contains(err.Error(), "unknown policy") {
		t.Errorf("unknown policy error = %v", err)
	}
	known := Known()
	for i := 1; i < len(known); i++ {
		if known[i-1] >= known[i] {
			t.Errorf("Known() not sorted: %v", known)
		}
	}
}

func TestNames(t *testing.T) {
	cases := map[string]Arbiter{
		"round-robin(L=1)":    NewRoundRobin(1),
		"hier-rr(L=1,g=2)":    NewHierarchicalRR(1, 2),
		"tdm(slots=4,len=2)":  NewTDM(4, 2),
		"fixed-priority(L=1)": NewFixedPriority(1),
	}
	for want, a := range cases {
		if got := a.Name(); got != want {
			t.Errorf("Name = %q, want %q", got, want)
		}
	}
}
