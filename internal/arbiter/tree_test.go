package arbiter

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestTreeRRFlatDegenerate(t *testing.T) {
	flat := NewRoundRobin(1)
	tree := NewTreeRR(1) // no levels
	single := NewTreeRR(1, 16)
	dst := req(0, 10)
	comps := []Request{req(1, 3), req(2, 20), req(5, 7)}
	want := flat.Bound(dst, comps, 0)
	if got := tree.Bound(dst, comps, 0); got != want {
		t.Errorf("no-level tree = %d, flat = %d", got, want)
	}
	if got := single.Bound(dst, comps, 0); got != want {
		t.Errorf("single-stage tree = %d, flat = %d", got, want)
	}
}

func TestTreeRRMatchesHierarchical(t *testing.T) {
	// A [g, n/g] tree is exactly the two-level HierarchicalRR.
	hier := NewHierarchicalRR(1, 2)
	tree := NewTreeRR(1, 2, 8)
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		dst := req(rng.Intn(16), int64(rng.Intn(50)+1))
		var comps []Request
		for c := 0; c < 16; c++ {
			if c != int(dst.Core) && rng.Intn(2) == 0 {
				comps = append(comps, req(c, int64(rng.Intn(50))))
			}
		}
		return hier.Bound(dst, comps, 0) == tree.Bound(dst, comps, 0)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestTreeRRMPPAExample(t *testing.T) {
	// MPPA pairing [2, 8]: dst core 0, pair sibling core 1, pair-1 cores 2
	// and 3. Sibling charged individually; pair 1 aggregated.
	tree := MPPA256Tree()
	got := tree.Bound(req(0, 10), []Request{req(1, 4), req(2, 6), req(3, 7)}, 0)
	// min(4,10) + min(6+7,10) = 4 + 10 = 14.
	if got != 14 {
		t.Fatalf("Bound = %d, want 14", got)
	}
}

func TestTreeRRThreeLevels(t *testing.T) {
	// [2, 2, 2]: 8 ports. dst port 0. Ports 4..7 form the far half: all
	// aggregate into ONE subtree term at the root stage.
	tree := NewTreeRR(1, 2, 2, 2)
	comps := []Request{req(4, 9), req(5, 9), req(6, 9), req(7, 9)}
	got := tree.Bound(req(0, 10), comps, 0)
	if got != 10 { // min(36, 10)
		t.Fatalf("Bound = %d, want 10", got)
	}
	// Port 1 (pair sibling) and port 2 (same quad, other pair) are
	// separate terms.
	got = tree.Bound(req(0, 10), []Request{req(1, 3), req(2, 4)}, 0)
	if got != 7 {
		t.Fatalf("Bound = %d, want 7", got)
	}
}

func TestTreeRRSamePortWraparound(t *testing.T) {
	// Capacity 4 ([2,2]): core 4 wraps onto port 0 = dst's port and is
	// charged individually.
	tree := NewTreeRR(1, 2, 2)
	if got := tree.Bound(req(0, 10), []Request{req(4, 3)}, 0); got != 3 {
		t.Fatalf("same-port competitor = %d, want 3", got)
	}
}

func TestTreeRRNeverExceedsFlat(t *testing.T) {
	// Aggregation can only tighten: tree bound ≤ flat bound, and deeper
	// trees never beat the destination demand cap per group.
	flat := NewRoundRobin(1)
	trees := []*TreeRR{NewTreeRR(1, 2, 8), NewTreeRR(1, 4, 4), NewTreeRR(1, 2, 2, 2, 2)}
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		dst := req(rng.Intn(16), int64(rng.Intn(60)+1))
		var comps []Request
		for c := 0; c < 16; c++ {
			if c != int(dst.Core) && rng.Intn(2) == 0 {
				comps = append(comps, req(c, int64(rng.Intn(60))))
			}
		}
		f := flat.Bound(dst, comps, 0)
		for _, tr := range trees {
			if tr.Bound(dst, comps, 0) > f {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

func TestTreeRRMonotone(t *testing.T) {
	tree := MPPA256Tree()
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		dst := req(0, int64(rng.Intn(40)+1))
		var comps []Request
		for c := 1; c < 16; c++ {
			if rng.Intn(2) == 0 {
				comps = append(comps, req(c, int64(rng.Intn(40))))
			}
		}
		base := tree.Bound(dst, comps, 0)
		grown := append(append([]Request(nil), comps...), req(9, int64(rng.Intn(40)+1)))
		return tree.Bound(dst, grown, 0) >= base
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

func TestTreeRRName(t *testing.T) {
	if got := MPPA256Tree().Name(); got != "tree-rr(L=1,2x8)" {
		t.Errorf("Name = %q", got)
	}
	if got := NewTreeRR(2).Name(); !strings.Contains(got, "flat") {
		t.Errorf("Name = %q", got)
	}
	if MPPA256Tree().Additive() {
		t.Error("tree must not claim additivity")
	}
}

func TestTreeRRClamping(t *testing.T) {
	tree := NewTreeRR(0, 0, -3)
	if tree.WordLatency != 1 || tree.Levels[0] != 1 || tree.Levels[1] != 1 {
		t.Errorf("clamping failed: %+v", tree)
	}
	if got := tree.Bound(req(0, 5), []Request{req(1, 5)}, 0); got < 0 {
		t.Errorf("degenerate tree bound = %d", got)
	}
}
