package arbiter

import (
	"math/rand"
	"testing"

	"github.com/mia-rt/mia/internal/model"
)

// TestBoundOneMatchesBound cross-checks every SingleTerm implementation
// against the general Bound on a one-element competitor set — the exactness
// contract the incremental scheduler's cached fast path depends on.
func TestBoundOneMatchesBound(t *testing.T) {
	weights := func(c model.CoreID) int64 { return int64(c)%3 + 1 }
	arbiters := []Arbiter{
		NewRoundRobin(1),
		NewRoundRobin(3),
		NewWeightedRR(2, nil),
		NewWeightedRR(1, weights),
		NewNone(),
	}
	rng := rand.New(rand.NewSource(7))
	for _, a := range arbiters {
		st, ok := a.(SingleTerm)
		if !ok {
			t.Fatalf("%s: additive arbiter without SingleTerm", a.Name())
		}
		for trial := 0; trial < 500; trial++ {
			dst := Request{Core: model.CoreID(rng.Intn(16)), Demand: model.Accesses(rng.Intn(400))}
			comp := Request{Core: model.CoreID(rng.Intn(16)), Demand: model.Accesses(rng.Intn(400))}
			b := model.BankID(rng.Intn(4))
			want := a.Bound(dst, []Request{comp}, b)
			if got := st.BoundOne(dst, comp, b); got != want {
				t.Fatalf("%s: BoundOne(%+v, %+v, %d) = %d, Bound = %d", a.Name(), dst, comp, b, got, want)
			}
			if got := One(a, dst, comp, b, make([]Request, 1)); got != want {
				t.Fatalf("%s: One = %d, Bound = %d", a.Name(), got, want)
			}
		}
	}
	// The helper must also serve non-SingleTerm policies through scratch.
	tdm := NewTDM(4, 2)
	dst := Request{Core: 0, Demand: 10}
	comp := Request{Core: 1, Demand: 5}
	if got, want := One(tdm, dst, comp, 0, make([]Request, 1)), tdm.Bound(dst, []Request{comp}, 0); got != want {
		t.Fatalf("TDM One = %d, Bound = %d", got, want)
	}
}
