package arbiter

import "github.com/mia-rt/mia/internal/model"

// NonAdditive wraps an arbiter and hides its additivity, forcing the
// schedulers onto their general full-recomputation path. It exists for the
// ablation experiment quantifying the additive fast path (Section II.C
// notes that exploiting additivity "could simplify and speed up the
// algorithm"); it has no production use.
type NonAdditive struct {
	Inner Arbiter
}

// Name implements Arbiter.
func (n NonAdditive) Name() string { return n.Inner.Name() + "/non-additive" }

// Bound implements Arbiter by delegation.
func (n NonAdditive) Bound(dst Request, competitors []Request, b model.BankID) model.Cycles {
	return n.Inner.Bound(dst, competitors, b)
}

// Additive implements Arbiter: always false, which is the point.
func (n NonAdditive) Additive() bool { return false }
