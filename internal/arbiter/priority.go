package arbiter

import (
	"fmt"

	"github.com/mia-rt/mia/internal/model"
)

// FixedPriority models a bus granting accesses by static initiator priority
// (lower core ID = higher priority by default, or a caller-supplied priority
// map). Priority buses trade fairness for low latency on the critical
// initiator; they are included to demonstrate that the schedulers are
// policy-agnostic, as the paper claims ("the algorithm can deal with other
// arbitration policies").
//
// Worst-case delay for a destination with demand d on an overlapping window:
//
//   - every access of a strictly higher-priority competitor may be served
//     before the destination's pending request: Σ w_hp slots;
//   - a lower-priority competitor can block each destination access at most
//     once (non-preemptive service of the access already granted):
//     min(Σ w_lp, d) slots.
type FixedPriority struct {
	// WordLatency is the bank service time per access in cycles.
	WordLatency model.Cycles
	// Priority returns the priority level of a core; smaller is more
	// important. Nil means "core ID is the priority".
	Priority func(model.CoreID) int
}

// NewFixedPriority returns a fixed-priority arbiter with core-ID priorities.
func NewFixedPriority(wordLatency model.Cycles) *FixedPriority {
	if wordLatency < 1 {
		wordLatency = 1
	}
	return &FixedPriority{WordLatency: wordLatency}
}

// Name implements Arbiter.
func (f *FixedPriority) Name() string {
	return fmt.Sprintf("fixed-priority(L=%d)", f.WordLatency)
}

func (f *FixedPriority) prio(c model.CoreID) int {
	if f.Priority == nil {
		return int(c)
	}
	return f.Priority(c)
}

// Bound implements Arbiter.
func (f *FixedPriority) Bound(dst Request, competitors []Request, _ model.BankID) model.Cycles {
	if dst.Demand <= 0 {
		return 0
	}
	dstPrio := f.prio(dst.Core)
	var higher, lower model.Accesses
	for _, c := range competitors {
		if f.prio(c.Core) <= dstPrio {
			// Equal priority is resolved in favor of the competitor in the
			// worst case: treat it as higher priority.
			higher += c.Demand
		} else {
			lower += c.Demand
		}
	}
	slots := higher + minAcc(lower, dst.Demand)
	return model.ScaleAccesses(slots, f.WordLatency)
}

// Additive implements Arbiter. The lower-priority blocking term couples
// competitors (min over their summed demand), so the bound is not additive.
func (f *FixedPriority) Additive() bool { return false }
