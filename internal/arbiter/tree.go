package arbiter

import (
	"fmt"
	"strings"

	"github.com/mia-rt/mia/internal/model"
)

// TreeRR models an arbitrary multi-level round-robin arbitration tree, the
// general form of the Kalray MPPA-256 cluster's bank arbiters (paired
// processing elements behind first-level arbiters, pair buses behind the
// bank's root arbiter — Rihani's thesis models exactly such a tree).
//
// Levels lists the fan-in of each arbitration stage from the leaves up:
// Levels = [2, 8] places cores 2k and 2k+1 behind pair arbiter k, and the 8
// pair buses behind the root. A core's position in the tree is its ID in
// the mixed-radix system defined by Levels; cores beyond the tree capacity
// wrap around (they share leaf ports).
//
// Bound: for each arbitration stage on the destination's path to the bank,
// every *sibling subtree* at that stage can delay each destination access
// at most once, contributing min(subtree demand, d) service slots:
//
//	IBUS = L · Σ_{stages s} Σ_{sibling subtrees T at s} min(W_T, d)
//
// A single-stage tree ([c]) degrades to flat round-robin; [g, …] with two
// stages reproduces HierarchicalRR. Deeper trees tighten the bound further
// because competitors merge into fewer, capped subtree terms.
type TreeRR struct {
	// WordLatency is the bank service time per access in cycles.
	WordLatency model.Cycles
	// Levels is the fan-in per stage, leaves first. Empty means flat.
	Levels []int
}

// NewTreeRR returns a multi-level round-robin tree arbiter. Non-positive
// fan-ins are clamped to 1 (a pass-through stage).
func NewTreeRR(wordLatency model.Cycles, levels ...int) *TreeRR {
	if wordLatency < 1 {
		wordLatency = 1
	}
	cleaned := make([]int, len(levels))
	for i, l := range levels {
		if l < 1 {
			l = 1
		}
		cleaned[i] = l
	}
	return &TreeRR{WordLatency: wordLatency, Levels: cleaned}
}

// MPPA256Tree returns the 16-PE compute-cluster bank arbiter: 8 pairs of
// processing elements behind a root round-robin stage.
func MPPA256Tree() *TreeRR { return NewTreeRR(1, 2, 8) }

// Name implements Arbiter.
func (t *TreeRR) Name() string {
	if len(t.Levels) == 0 {
		return fmt.Sprintf("tree-rr(L=%d,flat)", t.WordLatency)
	}
	parts := make([]string, len(t.Levels))
	for i, l := range t.Levels {
		parts[i] = fmt.Sprint(l)
	}
	return fmt.Sprintf("tree-rr(L=%d,%s)", t.WordLatency, strings.Join(parts, "x"))
}

// capacity is the number of leaf ports of the tree.
func (t *TreeRR) capacity() int {
	c := 1
	for _, l := range t.Levels {
		c *= l
	}
	return c
}

// digitsInto expands a leaf port into its per-stage subtree indices under
// the Levels mixed radix, writing into the caller's scratch buffer so the
// per-competitor loop in Bound stays allocation-free.
func (t *TreeRR) digitsInto(out []int, port int) {
	for i, l := range t.Levels {
		out[i] = port % l
		port /= l
	}
}

// Bound implements Arbiter. Each competitor is charged at the first
// arbitration stage where its tree path diverges from the destination's;
// competitors diverging at the same stage into the same sibling subtree are
// aggregated (they share that subtree's grant slots), and each resulting
// group contributes min(group demand, d) slots. Competitors wrapped onto
// the destination's own leaf port serialize with it at the port and are
// charged individually.
func (t *TreeRR) Bound(dst Request, competitors []Request, _ model.BankID) model.Cycles {
	if dst.Demand <= 0 || len(competitors) == 0 {
		return 0
	}
	if len(t.Levels) == 0 {
		var slots model.Accesses
		for _, c := range competitors {
			slots += minAcc(c.Demand, dst.Demand)
		}
		return model.ScaleAccesses(slots, t.WordLatency)
	}
	cap := t.capacity()
	dstPort := int(dst.Core) % cap
	//mialint:ignore hotpathalloc -- per-call scratch sized by tree depth; Bound must stay stateless because the parallel kernel calls it from every partition concurrently
	dstDigits := make([]int, len(t.Levels))
	t.digitsInto(dstDigits, dstPort)
	//mialint:ignore hotpathalloc -- per-call scratch reused across the competitor loop
	cDigits := make([]int, len(t.Levels))
	var slots model.Accesses
	type groupKey struct{ stage, subtree int }
	//mialint:ignore hotpathalloc -- per-call scratch sized by tree fan-out; Bound must stay stateless because the parallel kernel calls it from every partition concurrently
	groups := make(map[groupKey]model.Accesses)
	for _, c := range competitors {
		port := int(c.Core) % cap
		if port == dstPort {
			// Same leaf port: serializes with the destination before any
			// arbitration stage; one delay slot per competitor access.
			slots += minAcc(c.Demand, dst.Demand)
			continue
		}
		// The competitor's traffic meets the destination's at the highest
		// stage where their paths differ (below it they are in disjoint
		// subtrees, above it they share every arbiter).
		t.digitsInto(cDigits, port)
		for s := len(cDigits) - 1; s >= 0; s-- {
			if cDigits[s] != dstDigits[s] {
				groups[groupKey{stage: s, subtree: cDigits[s]}] += c.Demand
				break
			}
		}
	}
	//mialint:ignore determinism -- commutative integer sum over subtree totals; no iteration order can be observed in the result
	for _, w := range groups {
		slots += minAcc(w, dst.Demand)
	}
	return model.ScaleAccesses(slots, t.WordLatency)
}

// Additive implements Arbiter: subtree grouping couples competitors.
func (t *TreeRR) Additive() bool { return false }
