package arbiter

import (
	"fmt"

	"github.com/mia-rt/mia/internal/model"
)

// RoundRobin is the flat round-robin bank arbiter used throughout the
// paper's evaluation (the Kalray MPPA-256 RR model of Rihani's thesis).
//
// Under round-robin, initiators are granted one access each in circular
// order as long as they keep requesting. In the worst case, every access of
// the destination waits for exactly one access of every other initiator that
// still has pending work; a competitor with w accesses can therefore delay
// the destination by at most min(w, d) service slots, where d is the
// destination's own demand. The total bound on bank b is
//
//	IBUS(dst, W, b) = WordLatency · Σ_{i∈W} min(w_i, d)
//
// This matches the paper's worked example (Section II.A): three cores
// writing 8 words each through a 1-word bus are each delayed 8+8 = 16
// cycles.
type RoundRobin struct {
	// WordLatency is the bank service time per access, in cycles
	// (1 on the modeled MPPA-256 cluster bus).
	WordLatency model.Cycles
}

// NewRoundRobin returns a flat round-robin arbiter with the given per-word
// service latency (cycles per access).
func NewRoundRobin(wordLatency model.Cycles) *RoundRobin {
	if wordLatency < 1 {
		wordLatency = 1
	}
	return &RoundRobin{WordLatency: wordLatency}
}

// Name implements Arbiter.
func (r *RoundRobin) Name() string {
	return fmt.Sprintf("round-robin(L=%d)", r.WordLatency)
}

// Bound implements Arbiter.
func (r *RoundRobin) Bound(dst Request, competitors []Request, _ model.BankID) model.Cycles {
	if dst.Demand <= 0 {
		return 0
	}
	var slots model.Accesses
	for _, c := range competitors {
		slots += minAcc(c.Demand, dst.Demand)
	}
	return model.ScaleAccesses(slots, r.WordLatency)
}

// Additive implements Arbiter: the round-robin bound is a sum over
// competitors.
func (r *RoundRobin) Additive() bool { return true }

// BoundOne implements SingleTerm: the per-competitor term min(w, d)·L.
func (r *RoundRobin) BoundOne(dst, comp Request, _ model.BankID) model.Cycles {
	if dst.Demand <= 0 {
		return 0
	}
	return model.ScaleAccesses(minAcc(comp.Demand, dst.Demand), r.WordLatency)
}
