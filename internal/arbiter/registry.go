package arbiter

import (
	"fmt"
	"sort"

	"github.com/mia-rt/mia/internal/model"
)

// Spec selects an arbitration policy by name with its numeric parameters; it
// is the command-line-friendly way to construct arbiters in the cmd/ tools.
type Spec struct {
	// Policy is one of "rr", "hier-rr", "tdm", "fp".
	Policy string
	// WordLatency is the per-access service time in cycles (default 1).
	WordLatency int64
	// GroupSize is the first-level group size for "hier-rr" (default 2).
	GroupSize int
	// Slots and SlotLength configure "tdm" (defaults: cores of the target
	// platform must be passed by the caller as Slots; SlotLength 1).
	Slots      int
	SlotLength int64
}

// policies maps policy names to constructors.
var policies = map[string]func(Spec) Arbiter{
	"rr": func(s Spec) Arbiter {
		return NewRoundRobin(cycles(s.WordLatency))
	},
	"hier-rr": func(s Spec) Arbiter {
		g := s.GroupSize
		if g == 0 {
			g = 2
		}
		return NewHierarchicalRR(cycles(s.WordLatency), g)
	},
	"tdm": func(s Spec) Arbiter {
		return NewTDM(s.Slots, cycles(s.SlotLength))
	},
	"fp": func(s Spec) Arbiter {
		return NewFixedPriority(cycles(s.WordLatency))
	},
	"none": func(Spec) Arbiter {
		return NewNone()
	},
	"tree-rr": func(s Spec) Arbiter {
		g := s.GroupSize
		if g == 0 {
			g = 2
		}
		slots := s.Slots
		if slots == 0 {
			slots = 8
		}
		return NewTreeRR(cycles(s.WordLatency), g, slots)
	},
	"wrr": func(s Spec) Arbiter {
		return NewWeightedRR(cycles(s.WordLatency), nil)
	},
}

// New builds the arbiter described by spec.
func New(spec Spec) (Arbiter, error) {
	ctor, ok := policies[spec.Policy]
	if !ok {
		return nil, fmt.Errorf("arbiter: unknown policy %q (known: %v)", spec.Policy, Known())
	}
	return ctor(spec), nil
}

// Known lists the registered policy names in sorted order.
func Known() []string {
	names := make([]string, 0, len(policies))
	//mialint:ignore determinism -- keys are collected then sorted below; iteration order never reaches the caller
	for name := range policies {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

func cycles(v int64) model.Cycles {
	if v < 1 {
		return 1
	}
	return model.Cycles(v)
}
