package arbiter_test

import (
	"fmt"

	"github.com/mia-rt/mia/internal/arbiter"
)

// ExampleRoundRobin_Bound reproduces the worked example of the paper's
// Section II.A: three cores each writing 8 words through a single-word
// round-robin bus delay each other by 16 cycles.
func ExampleRoundRobin_Bound() {
	rr := arbiter.NewRoundRobin(1)
	dst := arbiter.Request{Core: 0, Demand: 8}
	competitors := []arbiter.Request{
		{Core: 1, Demand: 8},
		{Core: 2, Demand: 8},
	}
	fmt.Println(rr.Bound(dst, competitors, 0), "cycles")
	// Output:
	// 16 cycles
}

// ExampleTreeRR shows the MPPA-256 cluster arbitration tree: the pair
// sibling counts individually while a whole far pair aggregates.
func ExampleTreeRR() {
	tree := arbiter.MPPA256Tree()
	dst := arbiter.Request{Core: 0, Demand: 10}
	competitors := []arbiter.Request{
		{Core: 1, Demand: 4}, // same pair as core 0
		{Core: 2, Demand: 6}, // pair 1 ...
		{Core: 3, Demand: 7}, // ... aggregates with core 2
	}
	fmt.Println(tree.Name(), "->", tree.Bound(dst, competitors, 0), "cycles")
	flat := arbiter.NewRoundRobin(1)
	fmt.Println(flat.Name(), "->", flat.Bound(dst, competitors, 0), "cycles")
	// Output:
	// tree-rr(L=1,2x8) -> 14 cycles
	// round-robin(L=1) -> 17 cycles
}
