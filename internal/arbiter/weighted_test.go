package arbiter

import (
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/mia-rt/mia/internal/model"
)

func TestWeightedRRUnitWeightsEqualFlat(t *testing.T) {
	flat := NewRoundRobin(1)
	wrr := NewWeightedRR(1, nil)
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		dst := req(0, int64(rng.Intn(50)+1))
		var comps []Request
		for c := 1; c < 8; c++ {
			if rng.Intn(2) == 0 {
				comps = append(comps, req(c, int64(rng.Intn(50))))
			}
		}
		return flat.Bound(dst, comps, 0) == wrr.Bound(dst, comps, 0)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestWeightedRRFavorsHeavyDestination(t *testing.T) {
	// Destination with quantum 4 finishes its 8 accesses in 2 rounds, so a
	// competitor with quantum 1 delays it at most twice.
	weights := func(c model.CoreID) int64 {
		if c == 0 {
			return 4
		}
		return 1
	}
	wrr := NewWeightedRR(1, weights)
	if got := wrr.Bound(req(0, 8), []Request{req(1, 100)}, 0); got != 2 {
		t.Fatalf("favored destination bound = %d, want 2", got)
	}
	// Conversely a quantum-1 destination can eat 8 rounds × quantum 4.
	if got := wrr.Bound(req(1, 8), []Request{req(0, 100)}, 0); got != 32 {
		t.Fatalf("penalized destination bound = %d, want 32", got)
	}
}

func TestWeightedRRCompetitorDemandCaps(t *testing.T) {
	weights := func(model.CoreID) int64 { return 3 }
	wrr := NewWeightedRR(1, weights)
	// Competitor has only 2 accesses: contributes 2, not rounds×3.
	if got := wrr.Bound(req(0, 9), []Request{req(1, 2)}, 0); got != 2 {
		t.Fatalf("bound = %d, want 2", got)
	}
}

func TestWeightedRRAdditivityAndMonotonicity(t *testing.T) {
	weights := func(c model.CoreID) int64 { return int64(c%3) + 1 }
	wrr := NewWeightedRR(1, weights)
	if !wrr.Additive() {
		t.Fatal("weighted RR must be additive")
	}
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		dst := req(0, int64(rng.Intn(40)+1))
		var comps []Request
		for c := 1; c < 8; c++ {
			comps = append(comps, req(c, int64(rng.Intn(40))))
		}
		whole := wrr.Bound(dst, comps, 0)
		var sum model.Cycles
		for _, c := range comps {
			sum += wrr.Bound(dst, []Request{c}, 0)
		}
		if whole != sum {
			return false
		}
		grown := append([]Request(nil), comps...)
		grown[0].Demand += 5
		return wrr.Bound(dst, grown, 0) >= whole
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestWeightedRRZeroAndClamp(t *testing.T) {
	wrr := NewWeightedRR(0, func(model.CoreID) int64 { return 0 })
	if wrr.WordLatency != 1 {
		t.Error("latency not clamped")
	}
	// Zero weights clamp to 1: behaves like flat RR.
	if got := wrr.Bound(req(0, 5), []Request{req(1, 9)}, 0); got != 5 {
		t.Errorf("bound = %d, want 5", got)
	}
	if got := wrr.Bound(req(0, 0), []Request{req(1, 9)}, 0); got != 0 {
		t.Errorf("zero demand bound = %d", got)
	}
}
