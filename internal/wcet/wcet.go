// Package wcet derives per-task WCETs in isolation and shared-memory access
// counts from a structured control-flow description — the role the paper's
// framework (Section I) delegates to a static WCET tool "such as OTAWA".
// The real toolchain analyzes compiled binaries; this substrate implements
// the same contract on an explicit program model, which is exactly what the
// downstream interference analysis consumes (a WCET bound and a demand
// vector per task).
//
// A task body is a tree of regions:
//
//   - Block: a basic block with a cycle cost and per-kind memory access
//     counts (the leaf);
//   - Seq: sequential composition;
//   - Alt: a conditional — the analysis takes the most expensive branch
//     (in cycles; access counts follow the chosen branch, plus an optional
//     conservative envelope mode taking the per-metric maximum);
//   - Loop: a body iterated at most Bound times (loop bounds are mandatory,
//     as in any WCET analysis).
//
// The analysis computes, by structural recursion (the tree-based equivalent
// of IPET longest-path on reducible CFGs): worst-case cycles, local
// accesses, and per-successor write volumes are left to the task graph
// (they are communication, not intra-task behaviour).
package wcet

import (
	"fmt"

	"github.com/mia-rt/mia/internal/model"
)

// Region is a node of the structured control-flow tree.
type Region interface {
	// analyze returns the worst-case cost of the region under the mode.
	analyze(conservative bool) (Cost, error)
}

// Cost is the result of analyzing a region: execution cycles in isolation
// (memory accesses already included at their isolated service time) and the
// number of shared-memory accesses performed.
type Cost struct {
	Cycles   model.Cycles
	Accesses model.Accesses
}

// add accumulates sequential composition.
func (c Cost) add(o Cost) Cost {
	return Cost{Cycles: c.Cycles + o.Cycles, Accesses: c.Accesses + o.Accesses}
}

// times scales by a loop bound.
func (c Cost) times(n int64) Cost {
	return Cost{
		Cycles:   model.SatMulCycles(c.Cycles, model.Cycles(n)),
		Accesses: model.SatMulAccesses(c.Accesses, model.Accesses(n)),
	}
}

// Block is a basic block: Compute cycles of pure computation plus Loads +
// Stores shared-memory accesses, each costing AccessCycles (the platform's
// isolated bank service time) on top of the computation.
type Block struct {
	Name         string
	Compute      model.Cycles
	Loads        model.Accesses
	Stores       model.Accesses
	AccessCycles model.Cycles // 0 means 1 cycle per access
}

func (b Block) analyze(bool) (Cost, error) {
	if b.Compute < 0 || b.Loads < 0 || b.Stores < 0 || b.AccessCycles < 0 {
		return Cost{}, fmt.Errorf("wcet: block %q has negative cost", b.Name)
	}
	per := b.AccessCycles
	if per == 0 {
		per = 1
	}
	acc := b.Loads + b.Stores
	return Cost{
		Cycles:   b.Compute + model.ScaleAccesses(acc, per),
		Accesses: acc,
	}, nil
}

// Seq is sequential composition of regions.
type Seq []Region

func (s Seq) analyze(conservative bool) (Cost, error) {
	var total Cost
	for i, r := range s {
		if r == nil {
			return Cost{}, fmt.Errorf("wcet: nil region at position %d", i)
		}
		c, err := r.analyze(conservative)
		if err != nil {
			return Cost{}, err
		}
		total = total.add(c)
	}
	return total, nil
}

// Alt is a conditional: exactly one branch executes. An empty Alt is an
// error; a one-armed conditional is modeled as Alt{branch, Seq{}}.
type Alt []Region

func (a Alt) analyze(conservative bool) (Cost, error) {
	if len(a) == 0 {
		return Cost{}, fmt.Errorf("wcet: empty alternative")
	}
	var worst Cost
	for i, r := range a {
		if r == nil {
			return Cost{}, fmt.Errorf("wcet: nil branch at position %d", i)
		}
		c, err := r.analyze(conservative)
		if err != nil {
			return Cost{}, err
		}
		if i == 0 {
			worst = c
			continue
		}
		if conservative {
			// Envelope: worst cycles AND worst access count, even if no
			// single branch realizes both. Always sound for the
			// downstream analysis (interference grows with demand).
			if c.Cycles > worst.Cycles {
				worst.Cycles = c.Cycles
			}
			if c.Accesses > worst.Accesses {
				worst.Accesses = c.Accesses
			}
		} else if c.Cycles > worst.Cycles ||
			(c.Cycles == worst.Cycles && c.Accesses > worst.Accesses) {
			worst = c
		}
	}
	return worst, nil
}

// Loop iterates Body at most Bound times. Unbounded loops are rejected —
// there is no WCET without loop bounds.
type Loop struct {
	Bound int64
	Body  Region
}

func (l Loop) analyze(conservative bool) (Cost, error) {
	if l.Bound < 0 {
		return Cost{}, fmt.Errorf("wcet: negative loop bound %d", l.Bound)
	}
	if l.Body == nil {
		return Cost{}, fmt.Errorf("wcet: loop without body")
	}
	c, err := l.Body.analyze(conservative)
	if err != nil {
		return Cost{}, err
	}
	return c.times(l.Bound), nil
}

// Analyze computes the worst-case cost of a task body. In conservative
// mode, conditionals contribute a per-metric envelope (max cycles and max
// accesses independently); otherwise the single most expensive branch is
// selected (cycles first, accesses as tie-break).
func Analyze(body Region, conservative bool) (Cost, error) {
	if body == nil {
		return Cost{}, fmt.Errorf("wcet: nil body")
	}
	return body.analyze(conservative)
}

// TaskSpec runs the analysis and packages the result as a model.TaskSpec
// ready for the task-graph builder (core assignment is the mapper's job and
// defaults to 0 here).
func TaskSpec(name string, body Region, conservative bool) (model.TaskSpec, error) {
	c, err := Analyze(body, conservative)
	if err != nil {
		return model.TaskSpec{}, fmt.Errorf("wcet: task %q: %w", name, err)
	}
	return model.TaskSpec{
		Name:  name,
		WCET:  c.Cycles,
		Local: c.Accesses,
	}, nil
}
