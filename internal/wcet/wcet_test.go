package wcet

import (
	"strings"
	"testing"
	"testing/quick"

	"github.com/mia-rt/mia/internal/model"
)

func TestBlock(t *testing.T) {
	c, err := Analyze(Block{Compute: 10, Loads: 3, Stores: 2}, false)
	if err != nil {
		t.Fatal(err)
	}
	if c.Cycles != 15 || c.Accesses != 5 {
		t.Fatalf("cost = %+v, want 15 cycles / 5 accesses", c)
	}
}

func TestBlockAccessLatency(t *testing.T) {
	c, err := Analyze(Block{Compute: 10, Loads: 4, AccessCycles: 3}, false)
	if err != nil {
		t.Fatal(err)
	}
	if c.Cycles != 22 {
		t.Fatalf("cycles = %d, want 22", c.Cycles)
	}
}

func TestSeq(t *testing.T) {
	body := Seq{
		Block{Compute: 5, Loads: 1},
		Block{Compute: 7, Stores: 2},
	}
	c, err := Analyze(body, false)
	if err != nil {
		t.Fatal(err)
	}
	if c.Cycles != 15 || c.Accesses != 3 {
		t.Fatalf("cost = %+v", c)
	}
}

func TestAltPicksWorstBranch(t *testing.T) {
	body := Alt{
		Block{Compute: 100, Loads: 1},
		Block{Compute: 10, Loads: 50},
	}
	c, err := Analyze(body, false)
	if err != nil {
		t.Fatal(err)
	}
	// Branch 1: 101 cycles, 1 access. Branch 2: 60 cycles, 50 accesses.
	if c.Cycles != 101 || c.Accesses != 1 {
		t.Fatalf("cost = %+v, want the 101-cycle branch", c)
	}
}

func TestAltConservativeEnvelope(t *testing.T) {
	body := Alt{
		Block{Compute: 100, Loads: 1},
		Block{Compute: 10, Loads: 50},
	}
	c, err := Analyze(body, true)
	if err != nil {
		t.Fatal(err)
	}
	// Envelope: max cycles (101) and max accesses (50) independently.
	if c.Cycles != 101 || c.Accesses != 50 {
		t.Fatalf("cost = %+v, want envelope 101/50", c)
	}
}

func TestAltTieBreakOnAccesses(t *testing.T) {
	body := Alt{
		Block{Compute: 10, Loads: 0},
		Block{Compute: 8, Loads: 2}, // same 10 cycles, more accesses
	}
	c, err := Analyze(body, false)
	if err != nil {
		t.Fatal(err)
	}
	if c.Accesses != 2 {
		t.Fatalf("cost = %+v, want the higher-demand branch on a cycle tie", c)
	}
}

func TestLoop(t *testing.T) {
	body := Loop{Bound: 16, Body: Block{Compute: 3, Loads: 1}}
	c, err := Analyze(body, false)
	if err != nil {
		t.Fatal(err)
	}
	if c.Cycles != 64 || c.Accesses != 16 {
		t.Fatalf("cost = %+v, want 64/16", c)
	}
}

func TestNestedProgram(t *testing.T) {
	// for i in 0..8 { load; if cond { heavy } else { light }; store }
	body := Loop{Bound: 8, Body: Seq{
		Block{Loads: 1},
		Alt{
			Block{Compute: 20, Loads: 2},
			Block{Compute: 5},
		},
		Block{Stores: 1},
	}}
	c, err := Analyze(body, false)
	if err != nil {
		t.Fatal(err)
	}
	// Per iteration: 1 + (20+2) + 1 = 24 cycles, 4 accesses.
	if c.Cycles != 8*24 || c.Accesses != 8*4 {
		t.Fatalf("cost = %+v, want %d/%d", c, 8*24, 8*4)
	}
}

func TestErrors(t *testing.T) {
	cases := []struct {
		name string
		body Region
	}{
		{"nil body", nil},
		{"negative block", Block{Compute: -1}},
		{"negative loads", Block{Loads: -1}},
		{"empty alt", Alt{}},
		{"nil branch", Alt{nil}},
		{"nil seq entry", Seq{nil}},
		{"negative bound", Loop{Bound: -1, Body: Block{}}},
		{"loop no body", Loop{Bound: 3}},
		{"nested error", Seq{Block{}, Loop{Bound: 2, Body: Alt{}}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := Analyze(tc.body, false); err == nil {
				t.Fatal("invalid body accepted")
			}
		})
	}
}

func TestTaskSpec(t *testing.T) {
	spec, err := TaskSpec("filter", Loop{Bound: 4, Body: Block{Compute: 10, Loads: 2}}, false)
	if err != nil {
		t.Fatal(err)
	}
	if spec.Name != "filter" || spec.WCET != 48 || spec.Local != 8 {
		t.Fatalf("spec = %+v", spec)
	}
	if _, err := TaskSpec("bad", Alt{}, false); err == nil || !strings.Contains(err.Error(), `"bad"`) {
		t.Fatalf("err = %v", err)
	}
}

func TestConservativeDominatesProperty(t *testing.T) {
	// Property: the conservative envelope never reports fewer cycles or
	// accesses than the branch-selection mode, on arbitrary random trees.
	var build func(seed int64, depth int) Region
	build = func(seed int64, depth int) Region {
		s := seed
		next := func() int64 {
			s = s*6364136223846793005 + 1442695040888963407
			v := s >> 33
			if v < 0 {
				v = -v
			}
			return v
		}
		if depth == 0 {
			return Block{Compute: model.Cycles(next() % 50), Loads: model.Accesses(next() % 20), Stores: model.Accesses(next() % 10)}
		}
		switch next() % 4 {
		case 0:
			return Seq{build(next(), depth-1), build(next(), depth-1)}
		case 1:
			return Alt{build(next(), depth-1), build(next(), depth-1)}
		case 2:
			return Loop{Bound: next()%5 + 1, Body: build(next(), depth-1)}
		default:
			return Block{Compute: model.Cycles(next() % 50), Loads: model.Accesses(next() % 20)}
		}
	}
	check := func(seed int64) bool {
		body := build(seed, 4)
		precise, err1 := Analyze(body, false)
		envelope, err2 := Analyze(body, true)
		if err1 != nil || err2 != nil {
			return false
		}
		return envelope.Cycles >= precise.Cycles && envelope.Accesses >= precise.Accesses
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
