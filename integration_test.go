// Integration tests exercising the whole pipeline across package
// boundaries: JSON I/O → scheduling → independent checking → cycle-level
// simulation, plus determinism and randomized cross-package properties.
package mia_test

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/mia-rt/mia/internal/arbiter"
	"github.com/mia-rt/mia/internal/gen"
	"github.com/mia-rt/mia/internal/model"
	"github.com/mia-rt/mia/internal/sched"
	"github.com/mia-rt/mia/internal/sched/fixpoint"
	"github.com/mia-rt/mia/internal/sched/incremental"
	"github.com/mia-rt/mia/internal/sim"
)

// TestPipelineJSONRoundTrip: generate → serialize → parse → schedule must
// give the same schedule as the original graph.
func TestPipelineJSONRoundTrip(t *testing.T) {
	p := gen.NewParams(5, 8)
	p.Cores, p.Banks = 8, 8
	g := gen.MustLayered(p)

	var buf bytes.Buffer
	if err := g.WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	g2, err := model.ReadJSON(&buf)
	if err != nil {
		t.Fatalf("ReadJSON: %v", err)
	}

	opts := sched.Options{Arbiter: arbiter.NewRoundRobin(1)}
	r1, err := incremental.Schedule(g, opts)
	if err != nil {
		t.Fatalf("Schedule original: %v", err)
	}
	r2, err := incremental.Schedule(g2, opts)
	if err != nil {
		t.Fatalf("Schedule round-tripped: %v", err)
	}
	if !r1.Equal(r2) {
		t.Fatalf("round trip changed the schedule: %s", r1.Diff(r2))
	}
}

// TestDeterminism: scheduling is a pure function of its inputs.
func TestDeterminism(t *testing.T) {
	p := gen.NewParams(6, 6)
	g := gen.MustLayered(p)
	opts := sched.Options{Arbiter: arbiter.NewRoundRobin(1)}
	r1, err := incremental.Schedule(g, opts)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		r2, err := incremental.Schedule(g, opts)
		if err != nil {
			t.Fatal(err)
		}
		if !r1.Equal(r2) {
			t.Fatalf("run %d differs: %s", i, r1.Diff(r2))
		}
	}
}

// randomGraph builds an arbitrary (non-layered) DAG: random forward edges,
// random mapping, random minimal releases — shapes the layered generator
// never produces.
func randomGraph(seed int64) (*model.Graph, error) {
	rng := rand.New(rand.NewSource(seed))
	cores := 1 + rng.Intn(6)
	banks := 1 + rng.Intn(4)
	n := 2 + rng.Intn(30)
	b := model.NewBuilder(cores, banks)
	for i := 0; i < n; i++ {
		b.AddTask(model.TaskSpec{
			WCET:       model.Cycles(rng.Intn(200)),
			Core:       model.CoreID(rng.Intn(cores)),
			MinRelease: model.Cycles(rng.Intn(500)),
			Local:      model.Accesses(rng.Intn(100)),
		})
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if rng.Intn(5) == 0 {
				b.AddEdge(model.TaskID(i), model.TaskID(j), model.Accesses(rng.Intn(40)))
			}
		}
	}
	return b.Build()
}

// TestRandomGraphsInvariants: on arbitrary DAGs, the incremental scheduler
// must produce schedules satisfying every invariant of the independent
// checker, for several arbiters and both competitor treatments.
func TestRandomGraphsInvariants(t *testing.T) {
	arbs := []arbiter.Arbiter{
		arbiter.NewRoundRobin(1),
		arbiter.NewHierarchicalRR(1, 2),
		arbiter.NewTDM(4, 2),
		arbiter.NewFixedPriority(2),
	}
	check := func(seed int64, separate bool, arbIdx uint8) bool {
		g, err := randomGraph(seed)
		if err != nil {
			return false
		}
		opts := sched.Options{
			Arbiter:             arbs[int(arbIdx)%len(arbs)],
			SeparateCompetitors: separate,
		}
		res, err := incremental.Schedule(g, opts)
		if err != nil {
			return false
		}
		return sched.Check(g, opts, res) == nil
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// TestRandomGraphsSimulationSoundness: on arbitrary DAGs, simulated
// executions must respect the analysis windows.
func TestRandomGraphsSimulationSoundness(t *testing.T) {
	check := func(seed int64, patIdx uint8) bool {
		g, err := randomGraph(seed)
		if err != nil {
			return false
		}
		res, err := incremental.Schedule(g, sched.Options{Arbiter: arbiter.NewRoundRobin(1)})
		if err != nil {
			return false
		}
		out, err := sim.Run(g, res.Release, sim.Config{
			Pattern: sim.Pattern(int(patIdx) % 4),
			Seed:    seed,
		})
		if err != nil {
			return false
		}
		for i := range out.Finish {
			if out.Finish[i] > res.Finish(model.TaskID(i)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestHierarchicalNeverWorseThanFlat: grouping competitors behind a
// two-level tree can only reduce the analyzed interference (min(Σw, d) ≤
// Σ min(w, d) at the top level), end-to-end through the scheduler.
func TestHierarchicalNeverWorseThanFlat(t *testing.T) {
	for seed := int64(1); seed <= 10; seed++ {
		p := gen.NewParams(4, 8)
		p.Seed = seed
		p.Cores, p.Banks, p.SharedBank = 8, 1, true
		g := gen.MustLayered(p)
		flat, err := incremental.Schedule(g, sched.Options{Arbiter: arbiter.NewRoundRobin(1)})
		if err != nil {
			t.Fatal(err)
		}
		hier, err := incremental.Schedule(g, sched.Options{Arbiter: arbiter.NewHierarchicalRR(1, 4)})
		if err != nil {
			t.Fatal(err)
		}
		if hier.TotalInterference() > flat.TotalInterference() {
			t.Errorf("seed %d: hierarchical interference %d > flat %d",
				seed, hier.TotalInterference(), flat.TotalInterference())
		}
	}
}

// TestNonAdditiveWrapperEquivalence: hiding additivity must change the
// execution path, never the result.
func TestNonAdditiveWrapperEquivalence(t *testing.T) {
	for seed := int64(1); seed <= 10; seed++ {
		p := gen.NewParams(5, 6)
		p.Seed = seed
		g := gen.MustLayered(p)
		fast, err := incremental.Schedule(g, sched.Options{Arbiter: arbiter.NewRoundRobin(1)})
		if err != nil {
			t.Fatal(err)
		}
		slow, err := incremental.Schedule(g, sched.Options{
			Arbiter: arbiter.NonAdditive{Inner: arbiter.NewRoundRobin(1)},
		})
		if err != nil {
			t.Fatal(err)
		}
		if !fast.Equal(slow) {
			t.Fatalf("seed %d: additive fast path changed the schedule: %s", seed, fast.Diff(slow))
		}
	}
}

// TestFigure1BothAlgorithms: the two analyses coincide exactly on the
// paper's worked example.
func TestFigure1BothAlgorithms(t *testing.T) {
	g := gen.Figure1()
	opts := sched.Options{Arbiter: arbiter.NewRoundRobin(1)}
	a, err := incremental.Schedule(g, opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := fixpoint.Schedule(g, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Equal(b) {
		t.Fatalf("algorithms differ on Figure 1: %s", a.Diff(b))
	}
	if a.Makespan != 7 {
		t.Fatalf("makespan = %d", a.Makespan)
	}
}

// TestMergingEmpiricallyLessPessimistic is the paper's §II.C claim, stated
// the way the paper states it: merging same-core interferers into one big
// task "empirically outputs less pessimistic release times". The *local*
// bound is provably never worse (min(Σw, d) ≤ Σ min(w, d); asserted in the
// arbiter and interference tests) — but through schedule feedback a locally
// smaller interference can shift windows and create new overlaps, so the
// *global* total occasionally comes out larger. Measured over 2000
// arbitrary random DAGs: merged ≤ separate on 97.5% of instances. This test
// pins the empirical claim at ≥ 90% on a fixed, deterministic seed range.
func TestMergingEmpiricallyLessPessimistic(t *testing.T) {
	better, worse := 0, 0
	for seed := int64(1); seed <= 300; seed++ {
		g, err := randomGraph(seed)
		if err != nil {
			t.Fatal(err)
		}
		merged, err := incremental.Schedule(g, sched.Options{})
		if err != nil {
			t.Fatal(err)
		}
		separate, err := incremental.Schedule(g, sched.Options{SeparateCompetitors: true})
		if err != nil {
			t.Fatal(err)
		}
		if merged.TotalInterference() <= separate.TotalInterference() {
			better++
		} else {
			worse++
		}
	}
	if better*100 < (better+worse)*90 {
		t.Fatalf("merging less pessimistic on only %d/%d instances, want ≥ 90%%", better, better+worse)
	}
	t.Logf("merging ≤ separate on %d/%d instances", better, better+worse)
}
